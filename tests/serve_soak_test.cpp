// Serving soak test (ctest label `soak`, excluded from the tier-1 suite):
// multi-session churn over randomized shapes and deadlines for ~30 s of
// wall-clock, with scripted compile faults mixed in, asserting the engine's
// ground rules hold under sustained load:
//   * no future is ever abandoned — every submit resolves or rejects,
//   * the outcome counters are consistent — completions + errors +
//     rejections add up to exactly the number of submits,
//   * per-session in-flight accounting returns to zero.
//
// Gated twice so a plain `ctest` stays fast: the binary is only run by
// `ctest -L soak`, and the test body SKIPs unless TSSA_SOAK=1 is set.
// TSSA_SOAK_SECONDS overrides the churn duration (default 30).
// CI runs this under TSan on a schedule (.github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/decode.h"
#include "src/serve/engine.h"
#include "src/serve/fault_injector.h"
#include "src/tensor/random.h"

namespace tssa {
namespace {

using serve::Engine;
using serve::EngineOptions;
using serve::FaultInjector;
using serve::ProgramCache;
using serve::RejectedError;
using serve::Request;
using serve::Response;
using serve::Session;
using workloads::WorkloadConfig;

int soakSeconds() {
  const char* value = std::getenv("TSSA_SOAK_SECONDS");
  if (value == nullptr) return 30;
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : 30;
}

bool soakEnabled() {
  const char* value = std::getenv("TSSA_SOAK");
  return value != nullptr && std::string(value) == "1";
}

/// A small fixed menu of (workload, batch, seqLen) shapes: enough churn to
/// exercise eviction and shape-specialized recompiles, bounded so the run
/// spends its time serving rather than compiling.
struct ShapePoint {
  const char* workload;
  std::int64_t batch;
  std::int64_t seqLen;
};
constexpr ShapePoint kShapes[] = {
    {"lstm", 1, 4},   {"lstm", 2, 4},    {"lstm", 1, 6},
    {"nasrnn", 1, 4}, {"nasrnn", 2, 4},  {"attention", 1, 4},
    {"attention", 2, 4}, {"seq2seq", 1, 4},
};
constexpr std::size_t kShapeCount = std::size(kShapes);

WorkloadConfig configOf(const ShapePoint& shape) {
  WorkloadConfig config;
  config.batch = shape.batch;
  config.seqLen = shape.seqLen;
  return config;
}

/// Fresh random payload shaped like `sample` (the registry's example tuple
/// for the shape point); non-float entries are carried over verbatim.
std::vector<runtime::RtValue> randomizedInputs(
    const std::vector<runtime::RtValue>& sample, Rng& rng) {
  std::vector<runtime::RtValue> inputs = sample;
  for (runtime::RtValue& v : inputs) {
    if (!v.isTensor() || v.tensor().dtype() != DType::Float32) continue;
    v = runtime::RtValue(rng.normal(v.tensor().sizes(), 0.0, 0.5));
  }
  return inputs;
}

TEST(ServeSoakTest, MultiSessionChurnLosesNoFutureAndBalancesCounters) {
  if (!soakEnabled())
    GTEST_SKIP() << "soak disabled; set TSSA_SOAK=1 (and optionally "
                    "TSSA_SOAK_SECONDS) to run";

  // Scripted faults sprinkled through the run: a handful of compile
  // failures (exercising negative cache + fallback) at fixed indices.
  FaultInjector injector;
  for (std::uint64_t n : {3u, 11u, 19u, 31u, 53u}) injector.failNthCompile(n);

  EngineOptions options;
  options.maxBatch = 4;
  options.maxWaitUs = 200;
  options.cacheCapacity = 6;  // below the shape-menu size: eviction churn
  options.maxQueueDepth = 256;
  options.maxInFlightPerSession = 64;
  options.compileFailureTtlUs = 100'000;  // failures expire mid-run
  options.faultInjector = &injector;
  Engine engine(options);

  constexpr int kClients = 4;
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> abandoned{0};
  std::atomic<std::uint64_t> fallbacks{0};

  // Example input tuples for every shape point, built once up front
  // (Engine::defaultInputs builds the workload — too heavy for the loop).
  std::vector<std::vector<runtime::RtValue>> samples;
  samples.reserve(kShapeCount);
  for (const ShapePoint& shape : kShapes)
    samples.push_back(Engine::defaultInputs(shape.workload, configOf(shape)));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(soakSeconds());

  std::vector<Session> sessions;
  sessions.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    sessions.push_back(engine.openSession("soak-" + std::to_string(c)));

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Session& session = sessions[static_cast<std::size_t>(c)];
      Rng rng(1000 + static_cast<std::uint64_t>(c));
      std::vector<std::future<Response>> inflight;
      auto settle = [&](std::future<Response>& future) {
        // "Resolves or rejects" with a hard bound: a future still pending
        // after 60 s of grace is an abandoned promise — the exact bug this
        // soak exists to catch.
        if (future.wait_for(std::chrono::seconds(60)) !=
            std::future_status::ready) {
          ++abandoned;
          return;
        }
        try {
          const Response resp = future.get();
          ++completed;
          if (resp.fallback) ++fallbacks;
        } catch (const RejectedError&) {
          ++rejected;
        } catch (...) {
          ++failed;
        }
      };

      while (std::chrono::steady_clock::now() < deadline) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.nextInt(0, static_cast<std::int64_t>(kShapeCount) - 1));
        const ShapePoint& shape = kShapes[pick];
        Request r;
        r.workload = shape.workload;
        r.config = configOf(shape);
        r.inputs = randomizedInputs(samples[pick], rng);
        // A third of the traffic carries deadlines, from "hopeless" (often
        // shed in the batcher or queue) to comfortable.
        const std::int64_t dice = rng.nextInt(0, 5);
        if (dice == 0) r.deadlineUs = rng.nextInt(50, 2'000);
        if (dice == 1) r.deadlineUs = rng.nextInt(100'000, 2'000'000);
        ++submitted;
        inflight.push_back(session.submit(std::move(r)));
        // Settle in waves so the in-flight set keeps breathing without
        // lock-stepping submit → get.
        if (inflight.size() >= 16) {
          for (auto& f : inflight) settle(f);
          inflight.clear();
        }
      }
      for (auto& f : inflight) settle(f);
    });
  }
  for (auto& t : clients) t.join();
  engine.drain();

  EXPECT_EQ(abandoned.load(), 0u);
  const std::uint64_t settledTotal =
      completed.load() + rejected.load() + failed.load();
  EXPECT_EQ(settledTotal, submitted.load());

  // Engine-side counters agree with the client-side tallies.
  const serve::MetricsSnapshot snap = engine.metrics();
  EXPECT_EQ(snap.requests, completed.load());
  EXPECT_EQ(snap.rejectedTotal(), rejected.load());
  EXPECT_EQ(snap.errors, failed.load());
  EXPECT_EQ(snap.fallbackRequests, fallbacks.load());
  for (const Session& session : sessions) EXPECT_EQ(session.inFlight(), 0);

  // The scripted compile faults actually fired (the menu guarantees more
  // than enough compiles), so the fallback path saw soak traffic too.
  EXPECT_GE(injector.faultsInjected(), 1u);

  const ProgramCache::Stats cs = engine.cacheStats();
  std::printf("soak: %llu submitted, %llu ok (%llu fallback), %llu rejected, "
              "%llu errors; cache: %llu compiles, %llu failures, %llu "
              "evictions\n",
              static_cast<unsigned long long>(submitted.load()),
              static_cast<unsigned long long>(completed.load()),
              static_cast<unsigned long long>(fallbacks.load()),
              static_cast<unsigned long long>(rejected.load()),
              static_cast<unsigned long long>(failed.load()),
              static_cast<unsigned long long>(cs.compiles),
              static_cast<unsigned long long>(cs.compileFailures),
              static_cast<unsigned long long>(cs.evictions));
}

TEST(ServeSoakTest, DecodeSessionChurnBalancesKvAndCounters) {
  if (!soakEnabled())
    GTEST_SKIP() << "soak disabled; set TSSA_SOAK=1 (and optionally "
                    "TSSA_SOAK_SECONDS) to run";

  // Decode churn: sessions of randomized prompt/generation lengths joining
  // and leaving the continuous step batch for the soak duration, under a
  // deliberately tight KV budget and admission queue so every shedding path
  // (KvExhausted, QueueFull, Deadline) sees sustained traffic. The
  // invariants mirror the engine soak: every future settles, the outcome
  // tallies balance, and the paged KV cache returns to exactly zero.
  serve::DecodeOptions options;
  options.maxStepBatch = 4;
  options.maxActiveSessions = 6;
  options.maxQueuedSessions = 32;
  options.ctxBuckets = {8, 16, 32};
  options.kvPageTokens = 8;
  options.kvMaxPages = 20;  // < maxActive x worst case: admission shedding
  serve::DecodeScheduler sched(options);

  constexpr int kClients = 3;
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> abandoned{0};
  std::atomic<std::uint64_t> kvShed{0};

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(soakSeconds());

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(2000 + static_cast<std::uint64_t>(c));
      std::vector<std::future<serve::DecodeResult>> inflight;
      auto settle = [&](std::future<serve::DecodeResult>& future) {
        if (future.wait_for(std::chrono::seconds(60)) !=
            std::future_status::ready) {
          ++abandoned;
          return;
        }
        try {
          (void)future.get();
          ++completed;
        } catch (const RejectedError& e) {
          ++rejected;
          if (e.reason() == serve::RejectReason::KvExhausted) ++kvShed;
        } catch (...) {
          ++failed;
        }
      };

      while (std::chrono::steady_clock::now() < deadline) {
        serve::DecodeRequest r;
        const std::int64_t promptLen = rng.nextInt(1, 5);
        // Mostly fits; the tail exceeds the largest bucket so submit-time
        // KV shedding fires throughout the run, not just at startup.
        r.generate = rng.nextInt(1, 5) == 5 ? rng.nextInt(30, 40)
                                            : rng.nextInt(1, 20);
        r.prompt = serve::DecodeScheduler::randomPrompt(
            promptLen, 3000 + static_cast<std::uint64_t>(c));
        const std::int64_t dice = rng.nextInt(0, 5);
        if (dice == 0) r.deadlineUs = rng.nextInt(50, 2'000);
        if (dice == 1) r.deadlineUs = rng.nextInt(500'000, 5'000'000);
        ++submitted;
        inflight.push_back(sched.submit(std::move(r)));
        if (inflight.size() >= 8) {
          for (auto& f : inflight) settle(f);
          inflight.clear();
        }
      }
      for (auto& f : inflight) settle(f);
    });
  }
  for (auto& t : clients) t.join();
  sched.drain();

  EXPECT_EQ(abandoned.load(), 0u);
  const std::uint64_t settledTotal =
      completed.load() + rejected.load() + failed.load();
  EXPECT_EQ(settledTotal, submitted.load());

  const serve::DecodeMetricsSnapshot snap = sched.metrics();
  EXPECT_EQ(snap.sessionsSubmitted, submitted.load());
  EXPECT_EQ(snap.sessionsCompleted, completed.load());
  EXPECT_EQ(snap.rejectedTotal(), rejected.load());
  EXPECT_EQ(snap.joins, snap.leaves);  // every joiner left again

  // The paged KV cache drained to exactly zero: no leaked pages, no stale
  // reservations, every alloc matched by a free.
  EXPECT_EQ(snap.kv.pagesInUse, 0);
  EXPECT_EQ(snap.kv.pagesReserved, 0);
  EXPECT_EQ(snap.kv.activeSessions, 0);
  EXPECT_EQ(snap.kv.pageAllocs, snap.kv.pageFrees);
  EXPECT_LE(snap.kv.pagesHighWater, options.kvMaxPages);

  std::printf("decode soak: %llu submitted, %llu ok, %llu rejected "
              "(%llu kv_exhausted), %llu errors; %llu steps over %llu "
              "iterations, occupancy %.2f, kv high water %lld pages\n",
              static_cast<unsigned long long>(submitted.load()),
              static_cast<unsigned long long>(completed.load()),
              static_cast<unsigned long long>(rejected.load()),
              static_cast<unsigned long long>(kvShed.load()),
              static_cast<unsigned long long>(failed.load()),
              static_cast<unsigned long long>(snap.steps),
              static_cast<unsigned long long>(snap.iterations),
              snap.meanOccupancy,
              static_cast<long long>(snap.kv.pagesHighWater));
}

}  // namespace
}  // namespace tssa
