// Differential testing of the compilation pipeline (ISSUE: differential &
// determinism suite). Every workload is executed at four optimization
// levels — unoptimized reference, functionalized, +fusion, +parallelization —
// with the IR verified after every individual pass, and every level's outputs
// are compared against the reference interpreter's within tolerance. The
// parallelized level additionally runs threaded to cover the concurrent
// ParallelMap / fused-kernel execution paths.
#include <gtest/gtest.h>

#include "src/core/dce.h"
#include "src/core/fusion.h"
#include "src/core/inplace_reuse.h"
#include "src/core/lower_inplace.h"
#include "src/core/parallelize.h"
#include "src/core/tensor_ssa.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/runtime/interpreter.h"
#include "src/workloads/workload.h"

namespace tssa {
namespace {

using runtime::Interpreter;
using runtime::RtValue;
using workloads::buildWorkload;
using workloads::Workload;
using workloads::WorkloadConfig;

enum class Level {
  Reference,        // the imperative program, executed eagerly
  Functionalized,   // holistic functionalization (§4.1)
  Fused,            // + readonly-view rewriting, vertical fusion (§4.2.1)
  Parallelized,     // + horizontal loop parallelization (§4.2.2)
};

const char* levelName(Level level) {
  switch (level) {
    case Level::Reference: return "reference";
    case Level::Functionalized: return "functionalized";
    case Level::Fused: return "fused";
    case Level::Parallelized: return "parallelized";
  }
  return "?";
}

/// Applies the passes of `level` to `graph`, verifying the IR after every
/// pass so a mis-transformation is pinned to the pass that introduced it.
void compileTo(Level level, ir::Graph& graph) {
  using core::FusionPolicy;
  auto verified = [&](const char* pass, auto&& fn) {
    fn();
    ASSERT_NO_THROW(ir::verify(graph)) << "IR broken after " << pass << ":\n"
                                       << toString(graph);
  };
  if (level == Level::Reference) return;
  verified("lowerInplaceOps", [&] { core::lowerInplaceOps(graph); });
  verified("convertToTensorSSA", [&] { core::convertToTensorSSA(graph); });
  if (level >= Level::Fused) {
    verified("readonlyViewsToAccess", [&] {
      core::readonlyViewsToAccess(graph, FusionPolicy::tensorssa());
    });
  }
  if (level >= Level::Parallelized) {
    verified("parallelizeLoops", [&] { core::parallelizeLoops(graph); });
  }
  if (level >= Level::Fused) {
    verified("hoistConstants", [&] { core::hoistConstants(graph); });
    verified("fuseKernels", [&] {
      core::fuseKernels(graph, FusionPolicy::tensorssa());
    });
    verified("markInplaceAssigns", [&] { core::markInplaceAssigns(graph); });
  }
  verified("eliminateDeadCode", [&] { core::eliminateDeadCode(graph); });
}

void expectMatchesReference(const Workload& w,
                            const std::vector<RtValue>& reference,
                            const std::vector<RtValue>& got, Level level,
                            int threads) {
  ASSERT_EQ(reference.size(), got.size())
      << w.name << " at " << levelName(level);
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (!reference[i].isTensor()) continue;
    EXPECT_TRUE(allClose(reference[i].tensor(), got[i].tensor(), 1e-4))
        << w.name << " output " << i << " differs at level "
        << levelName(level) << " (threads=" << threads << ")";
  }
}

class DifferentialTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DifferentialTest, EveryLevelMatchesReference) {
  WorkloadConfig config;
  config.batch = 2;
  config.seqLen = 12;
  Workload w = buildWorkload(GetParam(), config);
  ASSERT_NO_THROW(ir::verify(*w.graph));

  Interpreter reference;
  const std::vector<RtValue> expected = reference.run(*w.graph, w.inputs);

  for (Level level : {Level::Functionalized, Level::Fused,
                      Level::Parallelized}) {
    auto graph = ir::cloneGraph(*w.graph);
    compileTo(level, *graph);
    if (::testing::Test::HasFatalFailure()) return;

    Interpreter serial(nullptr, /*useTexpr=*/true, /*threads=*/1);
    expectMatchesReference(w, expected, serial.run(*graph, w.inputs), level,
                           1);
    if (level == Level::Parallelized) {
      // The same compiled program, now with the threaded engine: iterations
      // of proven-independent ParallelMaps and the element loops of fused
      // kernels actually run concurrently.
      Interpreter threaded(nullptr, /*useTexpr=*/true, /*threads=*/4);
      expectMatchesReference(w, expected, threaded.run(*graph, w.inputs),
                             level, 4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, DifferentialTest,
                         ::testing::ValuesIn(workloads::workloadNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace tssa
