// Tests for the TensorSSA conversion (Algorithm 1): functional equivalence
// against the reference interpreter, structural postconditions, and
// eligibility bailouts.
#include <gtest/gtest.h>

#include "src/analysis/alias_graph.h"
#include "src/core/dce.h"
#include "src/core/lower_inplace.h"
#include "src/core/tensor_ssa.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/runtime/interpreter.h"
#include "src/tensor/random.h"

namespace tssa {
namespace {

using core::convertToTensorSSA;
using core::lowerInplaceOps;
using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::OpKind;
using ir::Type;
using ir::Value;
using runtime::Interpreter;
using runtime::RtValue;

/// Counts nodes of a kind-predicate anywhere in the graph.
std::size_t countNodes(const Graph& g, bool (*pred)(OpKind)) {
  std::size_t n = 0;
  std::vector<const Block*> stack{g.topBlock()};
  while (!stack.empty()) {
    const Block* b = stack.back();
    stack.pop_back();
    for (const Node* node : *b) {
      if (pred(node->kind())) ++n;
      for (const Block* inner : node->blocks()) stack.push_back(inner);
    }
  }
  return n;
}

bool isMutation(OpKind k) { return ir::isMutationOp(k); }
bool isView(OpKind k) { return ir::isViewOp(k); }
bool isUpdate(OpKind k) { return k == OpKind::Update; }

/// Runs `g` eagerly, converts to TensorSSA, runs again, and expects
/// identical outputs. Returns the conversion stats.
core::ConversionStats expectEquivalent(Graph& g, std::vector<RtValue> inputs) {
  ir::verify(g);
  Interpreter interp;
  auto before = interp.run(g, inputs);
  lowerInplaceOps(g);
  ir::verify(g);
  auto stats = convertToTensorSSA(g);
  ir::verify(g);
  EXPECT_EQ(countNodes(g, isUpdate), 0u) << toString(g);
  auto after = interp.run(g, inputs);
  EXPECT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i].isTensor()) {
      EXPECT_TRUE(allClose(before[i].tensor(), after[i].tensor()))
          << "output " << i << " differs:\n"
          << before[i].tensor().toString() << "\nvs\n"
          << after[i].tensor().toString() << "\n"
          << toString(g);
    } else if (before[i].isScalar()) {
      EXPECT_EQ(before[i].scalar(), after[i].scalar());
    }
  }
  return stats;
}

// ---- Straight-line cases -----------------------------------------------------------

// Figure 1: B = A[0]; B.copy_(C); use A.
TEST(TensorSsaTest, Figure1SelectCopy) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "A");
  Value* c = g.addInput(Type::tensor(), "C");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Value* view = b.select(a, 0, b.constInt(0));
  b.copy_(view, c);
  g.addOutput(a);

  auto stats = expectEquivalent(
      g, {RtValue(Tensor::fromData({1, 2, 3, 4}, {2, 2})),
          RtValue(Tensor::fromData({9, 8}, {2}))});
  EXPECT_EQ(stats.setsFunctionalized, 1u);
  EXPECT_EQ(stats.mutationsRemoved, 1u);
  EXPECT_EQ(countNodes(g, isMutation), 0u) << toString(g);
  EXPECT_EQ(countNodes(g, isView), 0u) << toString(g);
}

// Whole-tensor mutation (scalar-SSA case): a.copy_(w); use a.
TEST(TensorSsaTest, WholeTensorMutation) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  Value* w = g.addInput(Type::tensor(), "w");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  b.copy_(a, w);
  g.addOutput(b.relu(a));

  auto stats = expectEquivalent(g, {RtValue(Tensor::zeros({3})),
                                    RtValue(Tensor::fromData({-1, 2, 3}, {3}))});
  EXPECT_EQ(stats.mutationsRemoved, 1u);
  EXPECT_EQ(countNodes(g, isMutation), 0u);
}

// Two sequential mutations of sibling views: versions must chain.
TEST(TensorSsaTest, SequentialMutationsOfSiblingViews) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Value* row0 = b.select(a, 0, b.constInt(0));
  Value* row1 = b.select(a, 0, b.constInt(1));
  b.copy_(row0, b.mul(row1, b.constTensor(Tensor::full({}, Scalar(2.0)))));
  b.copy_(row1, b.relu(row0));
  g.addOutput(a);

  auto stats = expectEquivalent(
      g, {RtValue(Tensor::fromData({1, -2, 3, -4}, {2, 2}))});
  EXPECT_EQ(stats.mutationsRemoved, 2u);
  EXPECT_EQ(countNodes(g, isMutation), 0u);
}

// Mutation through a chain of views: a[0][1].copy_(s) updates grandparent.
TEST(TensorSsaTest, ChainedViewMutation) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  Value* s = g.addInput(Type::tensor(), "s");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Value* plane = b.select(a, 0, b.constInt(0));
  Value* row = b.select(plane, 0, b.constInt(1));
  b.copy_(row, s);
  g.addOutput(a);
  g.addOutput(plane);

  Rng rng(1);
  auto stats =
      expectEquivalent(g, {RtValue(rng.uniform({2, 3, 4})),
                           RtValue(rng.uniform({4}))});
  EXPECT_EQ(stats.mutationsRemoved, 1u);
  EXPECT_EQ(countNodes(g, isView), 0u);
}

// Slice (strided) mutation: a[1:7:2] *= 2.
TEST(TensorSsaTest, StridedSliceMutation) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Value* sl = b.slice(a, 0, b.constInt(1), b.constInt(7), 2);
  b.mul_(sl, b.constTensor(Tensor::full({}, Scalar(2.0))));
  g.addOutput(a);

  Rng rng(2);
  auto stats = expectEquivalent(g, {RtValue(rng.uniform({8}))});
  EXPECT_EQ(stats.mutationsRemoved, 1u);
}

// The view is read both before and after the mutation.
TEST(TensorSsaTest, ViewReadBeforeAndAfterMutation) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Value* row = b.select(a, 0, b.constInt(0));
  Value* preRead = b.relu(row);  // pre-mutation value
  b.copy_(row, b.neg(row));
  Value* postRead = b.relu(row);  // must see the mutation
  g.addOutput(preRead);
  g.addOutput(postRead);
  g.addOutput(a);

  expectEquivalent(g, {RtValue(Tensor::fromData({1, -2, 3, -4}, {2, 2}))});
}

// In-place operator family lowers and functionalizes.
TEST(TensorSsaTest, InplaceFamilyLowersToCopy) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  Value* m = g.addInput(Type::tensor(), "m");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Value* row = b.select(a, 0, b.constInt(1));
  b.add_(row, b.constTensor(Tensor::ones({})));
  b.sigmoid_(row);
  b.maskedFill_(row, m, b.constFloat(0.5));
  Value* other = b.select(a, 0, b.constInt(0));
  b.fill_(other, b.constFloat(-3.0));
  g.addOutput(a);

  Rng rng(3);
  Tensor mask = rng.bernoulli({3}, 0.5);
  auto stats = expectEquivalent(
      g, {RtValue(rng.uniform({2, 3})), RtValue(mask)});
  EXPECT_EQ(stats.mutationsRemoved, 4u);
  EXPECT_EQ(countNodes(g, isMutation), 0u);
}

// ---- Control flow: If ------------------------------------------------------------------

// Figure 2: both branches mutate `a` (whole) and `b[i]` (view).
TEST(TensorSsaTest, Figure2BranchMutation) {
  auto buildAndCheck = [](bool condValue) {
    Graph g;
    Value* a0 = g.addInput(Type::tensor(), "a");
    Value* b0 = g.addInput(Type::tensor(), "b");
    Value* idx = g.addInput(Type::integer(), "idx");
    IRBuilder b(g);
    Value* a = b.clone(a0);
    Value* bb = b.clone(b0);
    Value* cond = b.scalarGe(idx, b.constInt(0));
    Node* ifNode = b.makeIf(cond, 0);
    {
      IRBuilder t(g);
      t.setInsertionPointToEnd(ifNode->block(0));
      // a += 1; b[0] = a[0]
      Value* one = t.constTensor(Tensor::ones({}));
      Value* a2 = t.add(a, one);
      t.copy_(a, a2);
      Value* btgt = t.select(bb, 0, t.constInt(0));
      Value* asrc = t.select(a, 0, t.constInt(0));
      t.copy_(btgt, asrc);
    }
    {
      IRBuilder e(g);
      e.setInsertionPointToEnd(ifNode->block(1));
      // a -= 1; b[1] = a[1]
      Value* one = e.constTensor(Tensor::ones({}));
      Value* a4 = e.sub(a, one);
      e.copy_(a, a4);
      Value* btgt = e.select(bb, 0, e.constInt(1));
      Value* asrc = e.select(a, 0, e.constInt(1));
      e.copy_(btgt, asrc);
    }
    g.addOutput(a);
    g.addOutput(bb);

    Rng rng(4);
    expectEquivalent(
        g, {RtValue(rng.uniform({2, 2})), RtValue(rng.uniform({2, 2})),
            RtValue(Scalar(condValue ? std::int64_t{1} : std::int64_t{-1}))});
    EXPECT_EQ(countNodes(g, isMutation), 0u) << toString(g);
  };
  buildAndCheck(true);
  buildAndCheck(false);
}

// Mutation in only one branch: the sibling must pass the old version through.
TEST(TensorSsaTest, MutationInSingleBranch) {
  for (bool condValue : {true, false}) {
    Graph g;
    Value* a0 = g.addInput(Type::tensor(), "a");
    Value* cond = g.addInput(Type::boolean(), "c");
    IRBuilder b(g);
    Value* a = b.clone(a0);
    Node* ifNode = b.makeIf(cond, 0);
    {
      IRBuilder t(g);
      t.setInsertionPointToEnd(ifNode->block(0));
      Value* row = t.select(a, 0, t.constInt(0));
      t.fill_(row, t.constFloat(7.0));
    }
    // else: empty
    g.addOutput(b.relu(a));

    expectEquivalent(g, {RtValue(Tensor::fromData({1, 2, 3, 4}, {2, 2})),
                         RtValue(Scalar(condValue))});
    EXPECT_EQ(countNodes(g, isMutation), 0u) << toString(g);
  }
}

// ---- Control flow: Loop ----------------------------------------------------------------

// Figure 4: for i in range(n): b[i] = b[i] + 1.
TEST(TensorSsaTest, Figure4LoopMutation) {
  Graph g;
  Value* b0 = g.addInput(Type::tensor(), "b");
  Value* n = g.addInput(Type::integer(), "n");
  IRBuilder b(g);
  Value* b1 = b.clone(b0);
  Node* loop = b.makeLoop(n, {});
  Block* body = loop->block(0);
  {
    IRBuilder i(g);
    i.setInsertionPointToEnd(body);
    Value* iv = body->param(0);
    Value* bi = i.select(b1, 0, iv);
    Value* sum = i.add(bi, i.constTensor(Tensor::ones({})));
    Value* bt = i.select(b1, 0, iv);
    i.copy_(bt, sum);
  }
  g.addOutput(b1);

  auto stats = expectEquivalent(
      g, {RtValue(Tensor::fromData({10, 20, 30, 40}, {4})),
          RtValue(Scalar(std::int64_t{3}))});
  EXPECT_EQ(stats.mutationsRemoved, 1u);
  EXPECT_EQ(countNodes(g, isMutation), 0u) << toString(g);
  // The loop now carries the buffer as a functional value.
  const std::string text = toString(g);
  EXPECT_NE(text.find("immut::assign"), std::string::npos) << text;
  EXPECT_NE(text.find("immut::access"), std::string::npos) << text;
}

// Sequence accumulation: out[:, i] = h after h = tanh(h + x[:, i]).
TEST(TensorSsaTest, LoopWritesColumns) {
  Graph g;
  Value* x = g.addInput(Type::tensor(), "x");
  Value* h0 = g.addInput(Type::tensor(), "h");
  Value* n = g.addInput(Type::integer(), "n");
  IRBuilder b(g);
  Value* out = b.zeros({4, 6});
  Node* loop = b.makeLoop(n, {h0});
  Block* body = loop->block(0);
  {
    IRBuilder i(g);
    i.setInsertionPointToEnd(body);
    Value* iv = body->param(0);
    Value* h = body->param(1);
    Value* xi = i.select(x, 1, iv);
    Value* hNew = i.tanh(i.add(h, xi));
    Value* col = i.select(out, 1, iv);
    i.copy_(col, hNew);
    body->addReturn(hNew);
  }
  g.addOutput(loop->output(0));
  g.addOutput(out);

  Rng rng(5);
  auto stats = expectEquivalent(
      g, {RtValue(rng.uniform({4, 6})), RtValue(rng.uniform({4})),
          RtValue(Scalar(std::int64_t{6}))});
  EXPECT_EQ(countNodes(g, isMutation), 0u);
  EXPECT_GE(stats.updatesInserted, 2u);
}

// Nested: loop containing a branch that mutates.
TEST(TensorSsaTest, LoopWithBranchMutation) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  Value* n = g.addInput(Type::integer(), "n");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Node* loop = b.makeLoop(n, {});
  Block* body = loop->block(0);
  {
    IRBuilder i(g);
    i.setInsertionPointToEnd(body);
    Value* iv = body->param(0);
    Value* isEven = i.scalarEq(i.emit(OpKind::ScalarMod, {iv, i.constInt(2)}),
                               i.constInt(0));
    isEven->setType(Type::boolean());
    Node* ifNode = i.makeIf(isEven, 0);
    {
      IRBuilder t(g);
      t.setInsertionPointToEnd(ifNode->block(0));
      Value* row = t.select(a, 0, iv);
      t.add_(row, t.constTensor(Tensor::ones({})));
    }
  }
  g.addOutput(a);

  Rng rng(6);
  auto stats = expectEquivalent(
      g, {RtValue(rng.uniform({5, 3})), RtValue(Scalar(std::int64_t{5}))});
  EXPECT_EQ(countNodes(g, isMutation), 0u) << toString(g);
  EXPECT_GE(stats.updatesInserted, 3u);
}

// Two nested loops mutating a 2-D buffer.
TEST(TensorSsaTest, NestedLoopsMutate2D) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  Value* n = g.addInput(Type::integer(), "n");
  Value* m = g.addInput(Type::integer(), "m");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Node* outer = b.makeLoop(n, {});
  Block* obody = outer->block(0);
  {
    IRBuilder o(g);
    o.setInsertionPointToEnd(obody);
    Value* i = obody->param(0);
    Value* row = o.select(a, 0, i);
    Node* inner = o.makeLoop(m, {});
    Block* ibody = inner->block(0);
    {
      IRBuilder in(g);
      in.setInsertionPointToEnd(ibody);
      Value* j = ibody->param(0);
      Value* cell = in.select(row, 0, j);
      in.add_(cell, in.constTensor(Tensor::ones({})));
    }
  }
  g.addOutput(a);

  Rng rng(7);
  expectEquivalent(g, {RtValue(rng.uniform({3, 4})),
                       RtValue(Scalar(std::int64_t{3})),
                       RtValue(Scalar(std::int64_t{4}))});
  EXPECT_EQ(countNodes(g, isMutation), 0u);
}

// ---- Bailouts --------------------------------------------------------------------------

// A list holds a view and a mutation follows: must NOT functionalize.
TEST(TensorSsaTest, ContainerHazardBailsOut) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Value* row = b.select(a, 0, b.constInt(0));
  Value* list = b.cat({row, row}, 0);  // ListConstruct inside
  b.fill_(row, b.constFloat(1.0));     // mutation AFTER the list
  g.addOutput(list);
  g.addOutput(a);

  ir::verify(g);
  lowerInplaceOps(g);
  auto stats = convertToTensorSSA(g);
  EXPECT_EQ(stats.setsFunctionalized, 0u);
  EXPECT_EQ(stats.setsSkipped, 1u);
  EXPECT_GE(countNodes(g, isMutation), 1u);
  ir::verify(g);
}

// Same shape but the list is built after all mutations: safe, functionalize.
TEST(TensorSsaTest, ContainerAfterMutationIsSafe) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Value* row = b.select(a, 0, b.constInt(0));
  b.fill_(row, b.constFloat(1.0));
  Value* list = b.cat({row, row}, 0);  // after the mutation
  g.addOutput(list);
  g.addOutput(a);

  auto stats = expectEquivalent(g, {RtValue(Tensor::zeros({2, 3}))});
  EXPECT_EQ(stats.setsFunctionalized, 1u);
  EXPECT_EQ(countNodes(g, isMutation), 0u);
}

// A pure program converts trivially (no sets functionalized, no changes).
TEST(TensorSsaTest, PureProgramUntouched) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  g.addOutput(b.relu(b.add(a, a)));
  const std::size_t nodesBefore = g.countNodes();
  auto stats = expectEquivalent(g, {RtValue(Tensor::fromData({-1, 2}, {2}))});
  EXPECT_EQ(stats.setsFunctionalized, 0u);
  EXPECT_EQ(stats.mutationsRemoved, 0u);
  EXPECT_EQ(g.countNodes(), nodesBefore);
}

// ---- Alias analysis unit checks ---------------------------------------------------------

TEST(AliasInfoTest, EdgesAndSets) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Value* v = b.select(a, 0, b.constInt(0));
  Value* w = b.slice(v, 0, b.constInt(0), b.constInt(2), 1);
  Node* mut = b.copy_(w, b.constTensor(Tensor::zeros({2})));
  g.addOutput(a);
  ir::verify(g);

  auto info = analysis::AliasInfo::analyze(g);
  EXPECT_TRUE(info.mustAlias(v, a));
  EXPECT_TRUE(info.mustAlias(w, a));
  EXPECT_TRUE(info.mustAlias(w, v));
  EXPECT_TRUE(info.mayAlias(mut->output(0), a));
  EXPECT_FALSE(info.mustAlias(a, a0));  // clone breaks aliasing
  EXPECT_EQ(info.memoryRoot(w), a);

  ASSERT_EQ(info.sets().size(), 1u);
  const auto& set = info.sets()[0];
  EXPECT_EQ(set.origin, a);
  EXPECT_EQ(set.mutations.size(), 1u);
  EXPECT_TRUE(set.functionalizable);
  // v, w, and the mutation's returned alias.
  EXPECT_EQ(set.views.size(), 3u);
}

TEST(AliasInfoTest, ControlFlowEdges) {
  Graph g;
  Value* n = g.addInput(Type::integer(), "n");
  Value* t0 = g.addInput(Type::tensor(), "t");
  IRBuilder b(g);
  Node* loop = b.makeLoop(n, {t0});
  Block* body = loop->block(0);
  IRBuilder i(g);
  i.setInsertionPointToEnd(body);
  body->addReturn(i.relu(body->param(1)));
  g.addOutput(loop->output(0));
  ir::verify(g);

  auto info = analysis::AliasInfo::analyze(g);
  EXPECT_TRUE(info.mayAlias(body->param(1), t0));
  EXPECT_TRUE(info.mayAlias(loop->output(0), body->returns()[0]));
  EXPECT_FALSE(info.mustAlias(body->param(1), t0));
}

TEST(AliasInfoTest, PureSetNotFunctionalizable) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  g.addOutput(b.select(a, 0, b.constInt(0)));
  auto info = analysis::AliasInfo::analyze(g);
  ASSERT_EQ(info.sets().size(), 1u);
  EXPECT_FALSE(info.sets()[0].functionalizable);
  EXPECT_EQ(info.sets()[0].mutations.size(), 0u);
}

// ---- DCE / lower-inplace unit checks -----------------------------------------------------

TEST(DceTest, RemovesDeadPureChainKeepsMutation) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* dead = b.relu(b.add(a, a));
  (void)dead;
  Value* live = b.clone(a);
  b.fill_(b.select(live, 0, b.constInt(0)), b.constFloat(1.0));
  g.addOutput(live);
  const std::size_t removed = core::eliminateDeadCode(g);
  EXPECT_EQ(removed, 2u);
  EXPECT_GE(countNodes(g, isMutation), 1u);
  ir::verify(g);
}

TEST(DceTest, KeepsLoopWithMutationInside) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  Value* n = g.addInput(Type::integer(), "n");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Node* loop = b.makeLoop(n, {});
  Block* body = loop->block(0);
  IRBuilder i(g);
  i.setInsertionPointToEnd(body);
  i.fill_(i.select(a, 0, body->param(0)), i.constFloat(5.0));
  g.addOutput(a);
  // Loop has no outputs but mutates: must survive DCE.
  core::eliminateDeadCode(g);
  EXPECT_EQ(countNodes(g, [](OpKind k) { return k == OpKind::Loop; }), 1u);
}

TEST(LowerInplaceTest, RewritesAllForms) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  Value* m = g.addInput(Type::tensor(), "m");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  b.add_(a, b.constTensor(Tensor::ones({})));
  b.relu_(a);
  b.zero_(a);
  b.fill_(a, b.constFloat(2.0));
  b.maskedFill_(a, m, b.constFloat(9.0));
  b.copy_(a, a0);
  g.addOutput(a);
  const std::size_t lowered = lowerInplaceOps(g);
  EXPECT_EQ(lowered, 5u);  // copy_ stays
  EXPECT_EQ(countNodes(g, [](OpKind k) { return ir::isMutationOp(k); }), 6u);
  EXPECT_EQ(countNodes(g, [](OpKind k) { return k == OpKind::Copy_; }), 6u);
  ir::verify(g);
}

}  // namespace
}  // namespace tssa
