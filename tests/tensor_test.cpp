// Unit tests for the tensor substrate: shapes, views, aliasing, mutation.
#include <gtest/gtest.h>

#include "src/tensor/ops.h"
#include "src/tensor/random.h"
#include "src/tensor/tensor.h"

namespace tssa {
namespace {

TEST(ShapeTest, NumelAndStrides) {
  EXPECT_EQ(numelOf(Shape{2, 3, 4}), 24);
  EXPECT_EQ(numelOf(Shape{}), 1);
  EXPECT_EQ(numelOf(Shape{5, 0, 2}), 0);
  EXPECT_EQ(contiguousStrides(Shape{2, 3, 4}), (Strides{12, 4, 1}));
  EXPECT_EQ(contiguousStrides(Shape{}), (Strides{}));
}

TEST(ShapeTest, Broadcast) {
  EXPECT_EQ(broadcastShapes(Shape{3, 1}, Shape{1, 4}), (Shape{3, 4}));
  EXPECT_EQ(broadcastShapes(Shape{5, 3, 1}, Shape{3, 4}), (Shape{5, 3, 4}));
  EXPECT_EQ(broadcastShapes(Shape{}, Shape{2, 2}), (Shape{2, 2}));
  EXPECT_THROW(broadcastShapes(Shape{2}, Shape{3}), Error);
  EXPECT_TRUE(broadcastableTo(Shape{1, 4}, Shape{3, 4}));
  EXPECT_FALSE(broadcastableTo(Shape{2, 4}, Shape{3, 4}));
}

TEST(ShapeTest, NormalizeDimAndIndex) {
  EXPECT_EQ(normalizeDim(-1, 3), 2);
  EXPECT_EQ(normalizeDim(0, 3), 0);
  EXPECT_THROW(normalizeDim(3, 3), Error);
  EXPECT_EQ(normalizeIndex(-1, 5), 4);
  EXPECT_THROW(normalizeIndex(5, 5), Error);
}

TEST(ShapeTest, IndexIteratorVisitsRowMajor) {
  IndexIterator it(Shape{2, 2});
  std::vector<Shape> seen;
  for (; it.valid(); it.next())
    seen.emplace_back(it.index().begin(), it.index().end());
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], (Shape{0, 0}));
  EXPECT_EQ(seen[1], (Shape{0, 1}));
  EXPECT_EQ(seen[2], (Shape{1, 0}));
  EXPECT_EQ(seen[3], (Shape{1, 1}));
}

TEST(TensorTest, FactoryBasics) {
  Tensor z = Tensor::zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  EXPECT_EQ(z.dtype(), DType::Float32);
  EXPECT_DOUBLE_EQ(z.scalarAtLinear(5), 0.0);

  Tensor o = Tensor::ones({4}, DType::Int64);
  EXPECT_EQ(o.scalarAtLinear(3), 1.0);

  Tensor f = Tensor::full({2}, Scalar(2.5));
  EXPECT_FLOAT_EQ(static_cast<float>(f.scalarAtLinear(0)), 2.5f);

  Tensor ar = Tensor::arange(3, 11, 2);
  EXPECT_EQ(ar.sizes(), (Shape{4}));
  EXPECT_EQ(ar.scalarAtLinear(0), 3);
  EXPECT_EQ(ar.scalarAtLinear(3), 9);
}

TEST(TensorTest, ScalarTensorIsRankZero) {
  Tensor s = Tensor::scalar(Scalar(7.0));
  EXPECT_EQ(s.dim(), 0);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_DOUBLE_EQ(s.item().toDouble(), 7.0);
}

TEST(TensorTest, SelectSharesStorage) {
  Tensor a = Tensor::fromData({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor row = a.select(0, 1);
  EXPECT_EQ(row.sizes(), (Shape{3}));
  EXPECT_TRUE(row.sharesStorageWith(a));
  EXPECT_EQ(row.scalarAtLinear(0), 4.0);
  // Mutating the view mutates the base — the aliasing the paper targets.
  row.fill_(Scalar(0));
  EXPECT_EQ(a.scalarAtLinear(3), 0.0);
  EXPECT_EQ(a.scalarAtLinear(4), 0.0);
  EXPECT_EQ(a.scalarAtLinear(5), 0.0);
  EXPECT_EQ(a.scalarAtLinear(0), 1.0);
}

TEST(TensorTest, SliceWithStep) {
  Tensor a = Tensor::arange(10).to(DType::Float32);
  Tensor s = a.slice(0, 1, 8, 2);
  EXPECT_EQ(s.sizes(), (Shape{4}));
  EXPECT_EQ(s.scalarAtLinear(0), 1.0);
  EXPECT_EQ(s.scalarAtLinear(3), 7.0);
  s.fill_(Scalar(-1));
  EXPECT_EQ(a.scalarAtLinear(1), -1.0);
  EXPECT_EQ(a.scalarAtLinear(2), 2.0);
}

TEST(TensorTest, SliceNegativeBoundsClamp) {
  Tensor a = Tensor::arange(10);
  Tensor s = a.slice(0, -3, 100);
  EXPECT_EQ(s.sizes(), (Shape{3}));
  EXPECT_EQ(s.scalarAtLinear(0), 7);
}

TEST(TensorTest, PermuteAndTranspose) {
  Tensor a = Tensor::fromData({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor t = a.transpose(0, 1);
  EXPECT_EQ(t.sizes(), (Shape{3, 2}));
  EXPECT_FALSE(t.isContiguous());
  EXPECT_EQ(t.scalarAt(Shape{2, 1}), 6.0);
  EXPECT_EQ(t.scalarAt(Shape{1, 0}), 2.0);
  Tensor c = t.contiguous();
  EXPECT_TRUE(c.isContiguous());
  EXPECT_EQ(c.scalarAtLinear(1), 4.0);
}

TEST(TensorTest, ViewAndReshape) {
  Tensor a = Tensor::arange(12).to(DType::Float32);
  Tensor v = a.view({3, 4});
  EXPECT_TRUE(v.sharesStorageWith(a));
  EXPECT_EQ(v.scalarAt(Shape{2, 3}), 11.0);
  Tensor inferred = a.view({2, -1});
  EXPECT_EQ(inferred.sizes(), (Shape{2, 6}));
  EXPECT_THROW(a.view({5, 5}), Error);

  Tensor t = v.transpose(0, 1);
  Tensor r = t.reshape({12});  // non-contiguous: reshape copies
  EXPECT_FALSE(r.sharesStorageWith(a));
  EXPECT_EQ(r.scalarAtLinear(1), 4.0);
}

TEST(TensorTest, ExpandBroadcastsWithZeroStride) {
  Tensor a = Tensor::fromData({1, 2, 3}, {3, 1});
  Tensor e = a.expand({3, 4});
  EXPECT_TRUE(e.sharesStorageWith(a));
  EXPECT_EQ(e.scalarAt(Shape{1, 3}), 2.0);
  EXPECT_THROW(a.expand({4, 4}), Error);
}

TEST(TensorTest, SqueezeUnsqueeze) {
  Tensor a = Tensor::zeros({2, 1, 3});
  EXPECT_EQ(a.squeeze(1).sizes(), (Shape{2, 3}));
  EXPECT_THROW(a.squeeze(0), Error);
  EXPECT_EQ(a.unsqueeze(0).sizes(), (Shape{1, 2, 1, 3}));
  EXPECT_EQ(a.unsqueeze(-1).sizes(), (Shape{2, 1, 3, 1}));
  EXPECT_TRUE(a.unsqueeze(1).isContiguous());
}

TEST(TensorTest, FlattenRange) {
  Tensor a = Tensor::zeros({2, 3, 4});
  EXPECT_EQ(a.flatten().sizes(), (Shape{24}));
  EXPECT_EQ(a.flatten(1, 2).sizes(), (Shape{2, 12}));
}

TEST(TensorTest, CopyBroadcasts) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor src = Tensor::fromData({7, 8, 9}, {3});
  a.copy_(src);
  EXPECT_EQ(a.scalarAt(Shape{0, 2}), 9.0);
  EXPECT_EQ(a.scalarAt(Shape{1, 0}), 7.0);
  Tensor bad = Tensor::zeros({2});
  EXPECT_THROW(a.copy_(bad), Error);
}

TEST(TensorTest, OverlappingSelfCopyIsSnapshotted) {
  // b[1:] = b[:-1] — source and destination overlap in storage.
  Tensor b = Tensor::fromData({1, 2, 3, 4}, {4});
  b.slice(0, 1, 4).copy_(b.slice(0, 0, 3));
  EXPECT_EQ(b.scalarAtLinear(0), 1.0);
  EXPECT_EQ(b.scalarAtLinear(1), 1.0);
  EXPECT_EQ(b.scalarAtLinear(2), 2.0);
  EXPECT_EQ(b.scalarAtLinear(3), 3.0);
}

TEST(TensorTest, CloneDetachesStorage) {
  Tensor a = Tensor::ones({3});
  Tensor c = a.clone();
  EXPECT_FALSE(c.sharesStorageWith(a));
  c.fill_(Scalar(5));
  EXPECT_EQ(a.scalarAtLinear(0), 1.0);
}

TEST(TensorTest, DTypeCast) {
  Tensor a = Tensor::fromData({1.9f, -0.5f, 0.0f}, {3});
  Tensor i = a.to(DType::Int64);
  EXPECT_EQ(i.dtype(), DType::Int64);
  EXPECT_EQ(i.scalarAtLinear(0), 1);
  Tensor b = a.to(DType::Bool);
  EXPECT_EQ(b.scalarAtLinear(0), 1);
  EXPECT_EQ(b.scalarAtLinear(2), 0);
}

TEST(TensorTest, ChainedViewsShareOneStorage) {
  // The Figure-1 scenario: B = A[0], B.copy_(C) mutates A.
  Tensor a = Tensor::zeros({2, 2});
  Tensor b = a.select(0, 0);
  Tensor c = Tensor::fromData({5, 6}, {2});
  b.copy_(c);
  EXPECT_EQ(a.scalarAt(Shape{0, 0}), 5.0);
  EXPECT_EQ(a.scalarAt(Shape{0, 1}), 6.0);
  EXPECT_EQ(a.scalarAt(Shape{1, 0}), 0.0);
}

TEST(AllCloseTest, Basics) {
  Tensor a = Tensor::fromData({1, 2, 3}, {3});
  Tensor b = Tensor::fromData({1, 2, 3}, {3});
  EXPECT_TRUE(allClose(a, b));
  b.setScalarAtLinear(1, 2.1);
  EXPECT_FALSE(allClose(a, b));
  EXPECT_FALSE(allClose(a, Tensor::fromData({1, 2, 3, 4}, {4})));
  EXPECT_FALSE(allClose(a, a.to(DType::Int64)));
}

TEST(RngTest, Deterministic) {
  Rng r1(42), r2(42);
  Tensor a = r1.uniform({8});
  Tensor b = r2.uniform({8});
  EXPECT_TRUE(allClose(a, b, 0.0));
  Tensor m = r1.bernoulli({100}, 0.5);
  double count = ops::sum(m).item().toDouble();
  EXPECT_GT(count, 20);
  EXPECT_LT(count, 80);
}

}  // namespace
}  // namespace tssa
