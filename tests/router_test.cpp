// Tests for the sharded serving tier (src/serve/router.h, ISSUE 9):
//   (a) consistent-hash ring properties — deterministic placement, near-
//       uniform spread, and minimal disruption (removing one of N shards
//       moves only the removed shard's keys),
//   (b) routing — cache-affinity (every key compiles on exactly one shard,
//       tier-wide compile count equal to a single engine's), and a 1-shard
//       vs 4-shard differential: bitwise identical responses per request,
//   (c) shed-and-retry — a queue-full home shard hops the request to the
//       next ring position; with no retry budget it is rejected,
//   (d) drain / restart — a draining shard is skipped without consuming
//       retry budget, a restarted shard serves again with a fresh cache,
//   (e) decode sessions all share one home shard.
#include <gtest/gtest.h>

#include <future>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/serve/router.h"
#include "src/tensor/random.h"

namespace tssa {
namespace {

using runtime::RtValue;
using serve::DecodeRequest;
using serve::DecodeScheduler;
using serve::Engine;
using serve::EngineOptions;
using serve::HashRing;
using serve::RejectedError;
using serve::RejectReason;
using serve::Request;
using serve::Response;
using serve::Router;
using serve::RouterOptions;
using workloads::WorkloadConfig;

WorkloadConfig smallConfig(std::int64_t batch = 2, std::int64_t seqLen = 8) {
  WorkloadConfig c;
  c.batch = batch;
  c.seqLen = seqLen;
  return c;
}

std::vector<RtValue> randomInputs(const std::string& workload,
                                  const WorkloadConfig& config,
                                  std::uint64_t dataSeed) {
  std::vector<RtValue> inputs = Engine::defaultInputs(workload, config);
  Rng rng(dataSeed);
  for (RtValue& v : inputs) {
    if (!v.isTensor() || v.tensor().dtype() != DType::Float32) continue;
    Tensor fresh = rng.normal(v.tensor().sizes(), 0.0, 0.5);
    v = RtValue(fresh);
  }
  return inputs;
}

std::vector<std::string> testKeys(int n) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) keys.push_back("key-" + std::to_string(i));
  return keys;
}

// ---- (a) hash ring properties ----------------------------------------------

TEST(HashRingTest, PlacementIsDeterministicAcrossInstances) {
  // Same membership ⇒ same assignment, whichever instance (and therefore
  // whichever run — the hash is FNV-1a/splitmix64, never std::hash).
  HashRing a(4), b(4);
  for (const std::string& key : testKeys(500))
    EXPECT_EQ(a.shardFor(key), b.shardFor(key)) << key;
}

TEST(HashRingTest, HashIsStableAcrossRuns) {
  // Pinned values: if these change, every deployed ring re-shuffles its
  // keys — treat a failure here as an ABI break, not a test to update.
  EXPECT_EQ(HashRing::hashKey(""), 5665620140241705579ULL);
  EXPECT_EQ(HashRing::hashKey("decode_step"), 1618212313039882432ULL);
  EXPECT_EQ(HashRing::hashKey("shard-0#0"), 4497822514064674916ULL);
}

TEST(HashRingTest, SpreadIsNearUniform) {
  HashRing ring(4, /*vnodesPerShard=*/64);
  std::vector<int> counts(4, 0);
  const int n = 2000;
  for (const std::string& key : testKeys(n))
    ++counts[static_cast<std::size_t>(ring.shardFor(key))];
  for (int s = 0; s < 4; ++s) {
    // Ideal is n/4 = 500; with 64 vnodes the spread stays well within 2x.
    EXPECT_GT(counts[static_cast<std::size_t>(s)], n / 10) << "shard " << s;
    EXPECT_LT(counts[static_cast<std::size_t>(s)], n / 2) << "shard " << s;
  }
}

TEST(HashRingTest, RemovingAShardMovesOnlyItsKeys) {
  HashRing full(4);
  HashRing reduced(4);
  reduced.removeShard(3);
  int moved = 0;
  for (const std::string& key : testKeys(2000)) {
    const int before = full.shardFor(key);
    const int after = reduced.shardFor(key);
    if (before != 3) {
      // Keys not homed on the removed shard must not move at all.
      EXPECT_EQ(before, after) << key;
    } else {
      ++moved;
      EXPECT_NE(after, 3);
    }
  }
  // ~K/N of the keys lived on shard 3 and only they moved.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 2000 / 2);
}

TEST(HashRingTest, AddingTheShardBackRestoresPlacement) {
  HashRing full(4);
  HashRing churned(4);
  churned.removeShard(2);
  churned.addShard(2);
  for (const std::string& key : testKeys(500))
    EXPECT_EQ(full.shardFor(key), churned.shardFor(key)) << key;
}

TEST(HashRingTest, PreferenceStartsAtHomeAndIsDistinct) {
  HashRing ring(4);
  for (const std::string& key : testKeys(100)) {
    const std::vector<int> order = ring.preferenceFor(key, 4);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order.front(), ring.shardFor(key));
    EXPECT_EQ(std::set<int>(order.begin(), order.end()).size(), 4u);
    // Truncated preference is a prefix of the full one.
    const std::vector<int> two = ring.preferenceFor(key, 2);
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0], order[0]);
    EXPECT_EQ(two[1], order[1]);
  }
}

// ---- (b) routing: affinity + differential ----------------------------------

TEST(RouterTest, OneVsFourShardsAreBitwiseIdentical) {
  RouterOptions one;
  one.shards = 1;
  RouterOptions four;
  four.shards = 4;
  Router router1(one);
  Router router4(four);

  const std::vector<std::string> workloads = {"lstm", "attention", "seq2seq"};
  std::uint64_t dataSeed = 7;
  for (const std::string& workload : workloads) {
    for (std::int64_t batch : {1, 2, 4}) {
      Request r;
      r.workload = workload;
      r.config = smallConfig(batch, 8);
      r.inputs = randomInputs(workload, r.config, dataSeed++);
      Response a = router1.submit(r).get();
      Response b = router4.submit(r).get();
      EXPECT_TRUE(bench::outputsBitwiseEqual(a.outputs, b.outputs))
          << workload << " batch=" << batch;
    }
  }
}

TEST(RouterTest, AffinityKeepsTierCompileCountFlat) {
  const std::vector<std::string> workloads = {"lstm", "attention", "nasrnn",
                                              "seq2seq"};
  auto runAll = [&](Router& router) {
    for (const std::string& workload : workloads) {
      for (std::int64_t batch : {1, 2}) {  // polymorphic: one key per workload
        Request r;
        r.workload = workload;
        r.config = smallConfig(batch, 8);
        router.submit(r).get();
      }
    }
  };

  RouterOptions one;
  one.shards = 1;
  Router router1(one);
  runAll(router1);
  std::uint64_t compiles1 = 0;
  for (const auto& snap : router1.shardMetrics()) compiles1 += snap.cacheCompiles;

  RouterOptions four;
  four.shards = 4;
  Router router4(four);
  runAll(router4);
  std::uint64_t compiles4 = 0;
  std::uint64_t shardsWithPrograms = 0;
  for (const auto& snap : router4.shardMetrics()) {
    compiles4 += snap.cacheCompiles;
    if (snap.cacheCompiles > 0) ++shardsWithPrograms;
  }

  // Cache-affinity: sharding must not multiply compiles — every key
  // compiled on exactly one shard, so the tier total equals one engine's.
  EXPECT_EQ(compiles4, compiles1);
  EXPECT_EQ(compiles1, workloads.size());  // one polymorphic key per workload
  EXPECT_GE(shardsWithPrograms, 1u);

  // And routing is where keyFor says: each workload's traffic landed
  // entirely on its home shard.
  const std::vector<serve::MetricsSnapshot> snaps = router4.shardMetrics();
  for (const std::string& workload : workloads) {
    Request probe;
    probe.workload = workload;
    probe.config = smallConfig();
    const int home = router4.homeShard(probe);
    EXPECT_GT(snaps[static_cast<std::size_t>(home)].requests, 0u) << workload;
  }
}

// ---- (c) shed-and-retry ----------------------------------------------------

/// Router whose shards admit one request each and hold it in a long batch
/// window, so a second same-key submit deterministically overflows the home
/// shard's queue while the first is still pending.
RouterOptions overloadableOptions(int shards, int maxRetryHops) {
  RouterOptions o;
  o.shards = shards;
  o.maxRetryHops = maxRetryHops;
  o.engine.maxQueueDepth = 1;
  // A 2-wide batch with a long window keeps the admitted request parked in
  // the open batch (maxBatch=1 would seal and execute it immediately, and
  // the queue slot would free before the second submit arrives).
  o.engine.maxBatch = 2;
  o.engine.maxWaitUs = 150'000;
  return o;
}

TEST(RouterTest, QueueFullShedsToNextRingPosition) {
  Router router(overloadableOptions(/*shards=*/2, /*maxRetryHops=*/1));
  Request r;
  r.workload = "lstm";
  r.config = smallConfig();

  std::future<Response> first = router.submit(r);   // fills the home queue
  std::future<Response> second = router.submit(r);  // shed → retried

  EXPECT_NO_THROW(second.get());
  EXPECT_NO_THROW(first.get());
  const Router::Stats stats = router.stats();
  EXPECT_EQ(stats.retryHops, 1u);
  EXPECT_EQ(stats.exhausted, 0u);
  // The retry executed on the non-home shard: both shards served traffic,
  // and the program compiled twice tier-wide (the price of the hop).
  std::uint64_t shardsServing = 0;
  for (const auto& snap : router.shardMetrics())
    if (snap.requests > 0) ++shardsServing;
  EXPECT_EQ(shardsServing, 2u);
}

TEST(RouterTest, NoRetryBudgetMeansQueueFullRejection) {
  Router router(overloadableOptions(/*shards=*/2, /*maxRetryHops=*/0));
  Request r;
  r.workload = "lstm";
  r.config = smallConfig();

  std::future<Response> first = router.submit(r);
  std::future<Response> second = router.submit(r);
  try {
    second.get();
    FAIL() << "expected RejectedError";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::QueueFull);
  }
  EXPECT_NO_THROW(first.get());
  EXPECT_EQ(router.stats().retryHops, 0u);
  EXPECT_EQ(router.stats().exhausted, 1u);
}

TEST(RouterTest, NonRetryableRejectionsPassThrough) {
  RouterOptions o;
  o.shards = 2;
  o.maxRetryHops = 1;
  Router router(o);
  Request r;
  r.workload = "lstm";
  r.config = smallConfig();
  r.deadlineUs = -1;  // already expired: Deadline, not QueueFull
  try {
    router.submit(r).get();
    FAIL() << "expected RejectedError";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::Deadline);
  }
  // Deadline is shard-independent: no hop was spent trying elsewhere.
  EXPECT_EQ(router.stats().retryHops, 0u);
}

// ---- (d) drain / restart ---------------------------------------------------

TEST(RouterTest, DrainedShardIsSkippedWithoutRetryBudget) {
  RouterOptions o;
  o.shards = 2;
  o.maxRetryHops = 0;  // skipping a draining shard must not need a hop
  Router router(o);
  Request r;
  r.workload = "attention";
  r.config = smallConfig();
  const int home = router.homeShard(r);
  const int other = 1 - home;

  EXPECT_NO_THROW(router.submit(r).get());  // compiles on the home shard
  router.drainShard(home);
  EXPECT_EQ(router.shardState(home), Router::ShardState::Drained);

  Response viaOther = router.submit(r).get();
  EXPECT_FALSE(viaOther.outputs.empty());
  EXPECT_GT(router.stats().drainSkips, 0u);
  EXPECT_EQ(router.stats().retryHops, 0u);
  EXPECT_GT(router.shardMetrics()[static_cast<std::size_t>(other)].requests,
            0u);
}

TEST(RouterTest, RestartedShardServesAgainWithFreshCache) {
  RouterOptions o;
  o.shards = 2;
  Router router(o);
  Request r;
  r.workload = "yolact";
  r.config = smallConfig(1, 8);
  const int home = router.homeShard(r);

  router.submit(r).get();
  EXPECT_EQ(
      router.shardMetrics()[static_cast<std::size_t>(home)].cacheCompiles,
      1u);

  router.drainShard(home);
  router.restartShard(home);
  EXPECT_EQ(router.shardState(home), Router::ShardState::Serving);

  // Served by the home shard again, through a fresh cache (recompiled).
  router.submit(r).get();
  const serve::MetricsSnapshot snap =
      router.shardMetrics()[static_cast<std::size_t>(home)];
  EXPECT_EQ(snap.requests, 1u);       // fresh engine, fresh metrics
  EXPECT_EQ(snap.cacheCompiles, 1u);  // fresh cache, one recompile
  EXPECT_EQ(router.stats().drains, 1u);
  EXPECT_EQ(router.stats().restarts, 1u);
}

TEST(RouterTest, DrainingEverythingRejectsCleanly) {
  RouterOptions o;
  o.shards = 2;
  Router router(o);
  router.drainShard(0);
  router.drainShard(1);
  Request r;
  r.workload = "lstm";
  r.config = smallConfig();
  try {
    router.submit(r).get();
    FAIL() << "expected RejectedError";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::ShuttingDown);
  }
}

// ---- (e) decode routing ----------------------------------------------------

TEST(RouterTest, DecodeSessionsShareOneHomeShard) {
  RouterOptions o;
  o.shards = 2;
  o.enableDecode = true;
  o.decode.maxActiveSessions = 4;
  Router router(o);

  std::vector<std::future<serve::DecodeResult>> futures;
  for (int i = 0; i < 3; ++i) {
    DecodeRequest d;
    d.prompt = DecodeScheduler::randomPrompt(4, 100 + i);
    d.generate = 3;
    futures.push_back(router.submitDecode(d));
  }
  for (auto& f : futures) EXPECT_NO_THROW(f.get());

  const int home = router.decodeHomeShard();
  const std::vector<serve::DecodeMetricsSnapshot> snaps =
      router.shardDecodeMetrics();
  EXPECT_EQ(snaps[static_cast<std::size_t>(home)].sessionsSubmitted, 3u);
  EXPECT_EQ(snaps[static_cast<std::size_t>(1 - home)].sessionsSubmitted, 0u);
}

}  // namespace
}  // namespace tssa
