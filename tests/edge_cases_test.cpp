// Edge cases of the functionalization: aliasing sources, exotic view rules
// as mutation targets, and deeper control-flow nesting.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "src/core/lower_inplace.h"
#include "src/core/tensor_ssa.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/runtime/pipeline.h"
#include "src/tensor/ops.h"
#include "src/tensor/random.h"

namespace tssa {
namespace {

using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::OpKind;
using ir::Type;
using ir::Value;
using runtime::Interpreter;
using runtime::RtValue;

void expectConversionEquivalent(Graph& g, std::vector<RtValue> inputs,
                                double tol = 1e-6) {
  ir::verify(g);
  Interpreter interp;
  auto before = interp.run(g, inputs);
  core::lowerInplaceOps(g);
  core::convertToTensorSSA(g);
  ir::verify(g);
  auto after = interp.run(g, inputs);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(allClose(before[i].tensor(), after[i].tensor(), tol))
        << "output " << i << "\n"
        << toString(g);
  }
}

// b[0] = b[1]: the mutation source aliases the mutated tensor.
TEST(EdgeCaseTest, SelfAliasingSource) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Value* dst = b.select(a, 0, b.constInt(0));
  Value* src = b.select(a, 0, b.constInt(1));
  b.copy_(dst, src);
  b.copy_(src, b.neg(dst));  // and back, observing the first write
  g.addOutput(a);
  expectConversionEquivalent(
      g, {RtValue(Tensor::fromData({1, 2, 3, 4}, {2, 2}))});
}

// Mutation through a transposed view updates strided elements.
TEST(EdgeCaseTest, TransposedViewMutation) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  Value* w = g.addInput(Type::tensor(), "w");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Value* t = b.transpose(a, 0, 1);
  Value* col = b.select(t, 0, b.constInt(1));  // column 1 of a
  b.copy_(col, w);
  g.addOutput(a);
  Rng rng(7);
  expectConversionEquivalent(g, {RtValue(rng.uniform({3, 2})),
                                 RtValue(rng.uniform({3}))});
}

// Mutation through a reshape-flattened view.
TEST(EdgeCaseTest, ReshapeViewMutation) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Value* flat = b.reshape(a, {6});
  Value* piece = b.slice(flat, 0, b.constInt(2), b.constInt(5));
  b.fill_(piece, b.constFloat(-1.0));
  g.addOutput(a);
  g.addOutput(flat);
  Rng rng(8);
  expectConversionEquivalent(g, {RtValue(rng.uniform({2, 3}))});
}

// Write through a broadcast (expand) view: every row receives the source.
TEST(EdgeCaseTest, ExpandViewMutation) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* a = b.clone(a0);                       // [1, 4]
  Value* e = b.expand(a, {3, 4});               // rows alias each other!
  Node* mutation = b.fill_(e, b.constFloat(9.0));
  (void)mutation;
  g.addOutput(a);
  Rng rng(9);
  expectConversionEquivalent(g, {RtValue(rng.uniform({1, 4}))});
}

// If nested inside If, both arms mutating.
TEST(EdgeCaseTest, NestedBranchesMutate) {
  for (int combo = 0; combo < 4; ++combo) {
    Graph g;
    Value* a0 = g.addInput(Type::tensor(), "a");
    Value* c1 = g.addInput(Type::boolean(), "c1");
    Value* c2 = g.addInput(Type::boolean(), "c2");
    IRBuilder b(g);
    Value* a = b.clone(a0);
    Node* outer = b.makeIf(c1, 0);
    {
      IRBuilder tb(g);
      tb.setInsertionPointToEnd(outer->block(0));
      Node* innerIf = tb.makeIf(c2, 0);
      {
        IRBuilder ib(g);
        ib.setInsertionPointToEnd(innerIf->block(0));
        ib.fill_(ib.select(a, 0, ib.constInt(0)), ib.constFloat(5.0));
        ib.setInsertionPointToEnd(innerIf->block(1));
        ib.add_(a, ib.constTensor(Tensor::ones({})));
      }
      tb.setInsertionPointToEnd(outer->block(1));
      tb.relu_(a);
    }
    g.addOutput(a);
    expectConversionEquivalent(
        g, {RtValue(Tensor::fromData({-1, 2, -3, 4}, {2, 2})),
            RtValue(Scalar((combo & 1) != 0)),
            RtValue(Scalar((combo & 2) != 0))});
  }
}

// Loop whose body both reads the whole buffer and writes one row: the read
// must observe all previous iterations' writes.
TEST(EdgeCaseTest, LoopReadsWholeBufferEachIteration) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  Value* n = g.addInput(Type::integer(), "n");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Node* loop = b.makeLoop(n, {});
  Block* body = loop->block(0);
  {
    IRBuilder ib(g);
    ib.setInsertionPointToEnd(body);
    Value* total = ib.sumDim(a, 0);            // reads every row
    Value* row = ib.select(a, 0, body->param(0));
    ib.copy_(row, ib.add(row, total));         // then writes row i
  }
  g.addOutput(a);
  Rng rng(10);
  expectConversionEquivalent(
      g, {RtValue(rng.uniform({3, 2})), RtValue(Scalar(std::int64_t{3}))},
      1e-4);
}

// A mutation whose result is never observed: DCE should strip the whole
// functionalized chain.
TEST(EdgeCaseTest, UnobservedMutationIsEliminated) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* dead = b.clone(a0);
  b.fill_(b.select(dead, 0, b.constInt(0)), b.constFloat(1.0));
  g.addOutput(b.relu(a0));
  ir::verify(g);
  core::lowerInplaceOps(g);
  core::convertToTensorSSA(g);
  ir::verify(g);
  EXPECT_EQ(g.countNodes(), 1u) << toString(g);  // just the relu
}

// Mutating a graph input directly (no clone): the functional boundary drops
// caller-visible mutation but outputs must still be correct.
TEST(EdgeCaseTest, GraphInputMutationKeepsOutputSemantics) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* row = b.select(a, 0, b.constInt(0));
  b.fill_(row, b.constFloat(3.0));
  g.addOutput(b.relu(a));
  ir::verify(g);

  Interpreter interp;
  std::vector<RtValue> in1{RtValue(Tensor::zeros({2, 2}))};
  auto before = interp.run(g, in1);
  core::lowerInplaceOps(g);
  core::convertToTensorSSA(g);
  ir::verify(g);
  std::vector<RtValue> in2{RtValue(Tensor::zeros({2, 2}))};
  auto after = interp.run(g, in2);
  EXPECT_TRUE(allClose(before[0].tensor(), after[0].tensor(), 0.0));
  // The functionalized program no longer mutates the caller's tensor.
  EXPECT_EQ(in2[0].tensor().scalarAt(Shape{0, 0}), 0.0);
}

// Chained pipelines run back-to-back reuse compiled state (kernel cache).
TEST(EdgeCaseTest, PipelineRepeatedRunsAreStable) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* buf = b.clone(a);
  b.sigmoid_(b.select(buf, 0, b.constInt(0)));
  g.addOutput(buf);
  runtime::Pipeline p(runtime::PipelineKind::TensorSsa, g);
  Rng rng(11);
  Tensor t = rng.uniform({2, 3});
  std::vector<RtValue> in{RtValue(t)};
  auto first = p.run(in);
  auto second = p.run(in);
  EXPECT_TRUE(allClose(first[0].tensor(), second[0].tensor(), 0.0));
  EXPECT_GT(p.profiler().kernelLaunches(), 0);
}

// Integer dim-reductions must stay exact and defined. The historical bug:
// max/min seeded their accumulator with ±inf and cast it into the integer
// output — UB for Int64, and an all-negative row came out as the sentinel.
TEST(EdgeCaseTest, Int64DimReductionsStayExact) {
  std::vector<std::int64_t> data{-9, -2, -5,  //
                                 7,  -8, 3};
  Tensor a = Tensor::fromData(data, {2, 3});
  ASSERT_EQ(a.dtype(), DType::Int64);

  Tensor mx = ops::maxReduce(a, 1);
  EXPECT_EQ(mx.dtype(), DType::Int64);
  EXPECT_EQ(mx.scalarAtLinear(0), -2.0);  // all-negative row: no ±inf seed
  EXPECT_EQ(mx.scalarAtLinear(1), 7.0);

  Tensor mn = ops::minReduce(a, 1);
  EXPECT_EQ(mn.dtype(), DType::Int64);
  EXPECT_EQ(mn.scalarAtLinear(0), -9.0);
  EXPECT_EQ(mn.scalarAtLinear(1), -8.0);

  Tensor s = ops::sum(a, 1);
  EXPECT_EQ(s.dtype(), DType::Int64);
  EXPECT_EQ(s.scalarAtLinear(0), -16.0);
  EXPECT_EQ(s.scalarAtLinear(1), 2.0);

  Tensor am = ops::argmax(a, 1);
  EXPECT_EQ(am.dtype(), DType::Int64);
  EXPECT_EQ(am.scalarAtLinear(0), 1.0);
  EXPECT_EQ(am.scalarAtLinear(1), 0.0);
}

// Bool reductions: max along a dim is `any`, min is `all`, and the full-sum
// promotes to Int64 (a count), matching PyTorch.
TEST(EdgeCaseTest, BoolDimReductions) {
  std::array<bool, 6> data{false, true, false,  //
                           false, false, false};
  Tensor a = Tensor::fromData(std::span<const bool>(data), {2, 3});
  ASSERT_EQ(a.dtype(), DType::Bool);

  Tensor any = ops::maxReduce(a, 1);
  EXPECT_EQ(any.dtype(), DType::Bool);
  EXPECT_EQ(any.scalarAtLinear(0), 1.0);
  EXPECT_EQ(any.scalarAtLinear(1), 0.0);

  Tensor all = ops::minReduce(a, 1);
  EXPECT_EQ(all.dtype(), DType::Bool);
  EXPECT_EQ(all.scalarAtLinear(0), 0.0);
  EXPECT_EQ(all.scalarAtLinear(1), 0.0);

  Tensor count = ops::sum(a, 1);
  EXPECT_EQ(count.dtype(), DType::Int64);
  EXPECT_EQ(count.scalarAtLinear(0), 1.0);
  EXPECT_EQ(count.scalarAtLinear(1), 0.0);
}

// NaN propagates through reductions like PyTorch: any NaN in the row wins
// max/min, the first NaN wins argmax, and softmax poisons the whole row. An
// all--inf row must reduce to -inf (not to a seed sentinel) and softmax to
// NaN (exp(-inf - -inf)).
TEST(EdgeCaseTest, NaNAndInfPropagateThroughReductions) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a = Tensor::fromData({1.0f, nan, 5.0f,  //
                               -inf, -inf, -inf,  //
                               2.0f, 9.0f, nan},
                              {3, 3});

  Tensor mx = ops::maxReduce(a, 1);
  EXPECT_TRUE(std::isnan(mx.scalarAtLinear(0)));
  EXPECT_EQ(mx.scalarAtLinear(1), -static_cast<double>(inf));
  EXPECT_TRUE(std::isnan(mx.scalarAtLinear(2)));

  Tensor mn = ops::minReduce(a, 1);
  EXPECT_TRUE(std::isnan(mn.scalarAtLinear(0)));

  Tensor am = ops::argmax(a, 1);
  EXPECT_EQ(am.scalarAtLinear(0), 1.0);  // first NaN beats everything
  EXPECT_EQ(am.scalarAtLinear(1), 0.0);  // ties keep the earliest index
  EXPECT_EQ(am.scalarAtLinear(2), 2.0);

  Tensor sm = ops::softmax(a, 1);
  for (std::int64_t j = 0; j < 3; ++j) {
    EXPECT_TRUE(std::isnan(sm.scalarAt(Shape{0, j})));
    EXPECT_TRUE(std::isnan(sm.scalarAt(Shape{1, j})));
    EXPECT_TRUE(std::isnan(sm.scalarAt(Shape{2, j})));
  }
}

// Overlapping copy_ within one buffer: the runtime snapshots the source (or
// memmoves on the contiguous fast path), so a shifted self-copy behaves as
// if the source were read in full before any write. Functionalization must
// reproduce that — its Assign is a pure function of the old version, i.e.
// snapshot semantics by construction.
TEST(EdgeCaseTest, OverlappingCopyActsOnSourceSnapshot) {
  // Shift left: a[0:4] = a[1:5].
  {
    Graph g;
    Value* a0 = g.addInput(Type::tensor(), "a");
    IRBuilder b(g);
    Value* a = b.clone(a0);
    Value* dst = b.slice(a, 0, b.constInt(0), b.constInt(4));
    Value* src = b.slice(a, 0, b.constInt(1), b.constInt(5));
    b.copy_(dst, src);
    g.addOutput(a);
    expectConversionEquivalent(
        g, {RtValue(Tensor::fromData({1, 2, 3, 4, 5}, {5}))});
  }
  // Shift right: a[1:5] = a[0:4] — the direction where a naive forward
  // element loop would read already-overwritten slots.
  {
    Graph g;
    Value* a0 = g.addInput(Type::tensor(), "a");
    IRBuilder b(g);
    Value* a = b.clone(a0);
    Value* dst = b.slice(a, 0, b.constInt(1), b.constInt(5));
    Value* src = b.slice(a, 0, b.constInt(0), b.constInt(4));
    b.copy_(dst, src);
    g.addOutput(a);
    ir::verify(g);
    Interpreter interp;
    std::vector<RtValue> in{RtValue(Tensor::fromData({1, 2, 3, 4, 5}, {5}))};
    auto out = interp.run(g, in);
    const Tensor& r = out[0].tensor();
    const double expected[] = {1, 1, 2, 3, 4};  // not {1,1,1,1,1}
    for (std::int64_t i = 0; i < 5; ++i)
      EXPECT_EQ(r.scalarAtLinear(i), expected[i]) << "index " << i;
    core::lowerInplaceOps(g);
    core::convertToTensorSSA(g);
    ir::verify(g);
    std::vector<RtValue> in2{RtValue(Tensor::fromData({1, 2, 3, 4, 5}, {5}))};
    auto out2 = interp.run(g, in2);
    EXPECT_TRUE(allClose(out[0].tensor(), out2[0].tensor(), 0.0));
  }
}

// Rank-0 and extent-0 tensors through a planner-enabled pipeline: the arena
// bypasses zero-byte allocations, and repeated runs (which recycle buffers)
// must stay bitwise identical to the first and to a planner-off pipeline.
TEST(EdgeCaseTest, RankZeroAndExtentZeroThroughPlannedPipeline) {
  Graph g;
  Value* s0 = g.addInput(Type::tensor(), "s");   // rank-0
  Value* e0 = g.addInput(Type::tensor(), "e");   // extent-0: [0, 3]
  IRBuilder b(g);
  Value* s = b.clone(s0);
  b.add_(s, b.constTensor(Tensor::ones({})));
  Value* e = b.clone(e0);
  b.relu_(e);
  g.addOutput(b.mul(s, s));
  g.addOutput(e);
  ir::verify(g);

  std::vector<RtValue> in{RtValue(Tensor::full({}, Scalar(2.0))),
                          RtValue(Tensor::zeros({0, 3}))};
  runtime::PipelineOptions planned;
  runtime::PipelineOptions unplanned;
  unplanned.memoryPlan = false;
  runtime::Pipeline on(runtime::PipelineKind::TensorSsa, g, planned);
  runtime::Pipeline off(runtime::PipelineKind::TensorSsa, g, unplanned);
  auto reference = off.run(in);
  for (int run = 0; run < 3; ++run) {
    auto got = on.run(in);
    ASSERT_EQ(got.size(), reference.size());
    EXPECT_EQ(got[0].tensor().dim(), 0);
    EXPECT_EQ(got[0].tensor().scalarAt(Shape{}), 9.0);
    EXPECT_EQ(got[1].tensor().sizes(), (Shape{0, 3}));
    EXPECT_EQ(got[1].tensor().numel(), 0);
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_TRUE(allClose(got[i].tensor(), reference[i].tensor(), 0.0))
          << "run " << run << " output " << i;
  }
}

}  // namespace
}  // namespace tssa
