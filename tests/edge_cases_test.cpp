// Edge cases of the functionalization: aliasing sources, exotic view rules
// as mutation targets, and deeper control-flow nesting.
#include <gtest/gtest.h>

#include "src/core/lower_inplace.h"
#include "src/core/tensor_ssa.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/runtime/pipeline.h"
#include "src/tensor/random.h"

namespace tssa {
namespace {

using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::OpKind;
using ir::Type;
using ir::Value;
using runtime::Interpreter;
using runtime::RtValue;

void expectConversionEquivalent(Graph& g, std::vector<RtValue> inputs,
                                double tol = 1e-6) {
  ir::verify(g);
  Interpreter interp;
  auto before = interp.run(g, inputs);
  core::lowerInplaceOps(g);
  core::convertToTensorSSA(g);
  ir::verify(g);
  auto after = interp.run(g, inputs);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(allClose(before[i].tensor(), after[i].tensor(), tol))
        << "output " << i << "\n"
        << toString(g);
  }
}

// b[0] = b[1]: the mutation source aliases the mutated tensor.
TEST(EdgeCaseTest, SelfAliasingSource) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Value* dst = b.select(a, 0, b.constInt(0));
  Value* src = b.select(a, 0, b.constInt(1));
  b.copy_(dst, src);
  b.copy_(src, b.neg(dst));  // and back, observing the first write
  g.addOutput(a);
  expectConversionEquivalent(
      g, {RtValue(Tensor::fromData({1, 2, 3, 4}, {2, 2}))});
}

// Mutation through a transposed view updates strided elements.
TEST(EdgeCaseTest, TransposedViewMutation) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  Value* w = g.addInput(Type::tensor(), "w");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Value* t = b.transpose(a, 0, 1);
  Value* col = b.select(t, 0, b.constInt(1));  // column 1 of a
  b.copy_(col, w);
  g.addOutput(a);
  Rng rng(7);
  expectConversionEquivalent(g, {RtValue(rng.uniform({3, 2})),
                                 RtValue(rng.uniform({3}))});
}

// Mutation through a reshape-flattened view.
TEST(EdgeCaseTest, ReshapeViewMutation) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Value* flat = b.reshape(a, {6});
  Value* piece = b.slice(flat, 0, b.constInt(2), b.constInt(5));
  b.fill_(piece, b.constFloat(-1.0));
  g.addOutput(a);
  g.addOutput(flat);
  Rng rng(8);
  expectConversionEquivalent(g, {RtValue(rng.uniform({2, 3}))});
}

// Write through a broadcast (expand) view: every row receives the source.
TEST(EdgeCaseTest, ExpandViewMutation) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* a = b.clone(a0);                       // [1, 4]
  Value* e = b.expand(a, {3, 4});               // rows alias each other!
  Node* mutation = b.fill_(e, b.constFloat(9.0));
  (void)mutation;
  g.addOutput(a);
  Rng rng(9);
  expectConversionEquivalent(g, {RtValue(rng.uniform({1, 4}))});
}

// If nested inside If, both arms mutating.
TEST(EdgeCaseTest, NestedBranchesMutate) {
  for (int combo = 0; combo < 4; ++combo) {
    Graph g;
    Value* a0 = g.addInput(Type::tensor(), "a");
    Value* c1 = g.addInput(Type::boolean(), "c1");
    Value* c2 = g.addInput(Type::boolean(), "c2");
    IRBuilder b(g);
    Value* a = b.clone(a0);
    Node* outer = b.makeIf(c1, 0);
    {
      IRBuilder tb(g);
      tb.setInsertionPointToEnd(outer->block(0));
      Node* innerIf = tb.makeIf(c2, 0);
      {
        IRBuilder ib(g);
        ib.setInsertionPointToEnd(innerIf->block(0));
        ib.fill_(ib.select(a, 0, ib.constInt(0)), ib.constFloat(5.0));
        ib.setInsertionPointToEnd(innerIf->block(1));
        ib.add_(a, ib.constTensor(Tensor::ones({})));
      }
      tb.setInsertionPointToEnd(outer->block(1));
      tb.relu_(a);
    }
    g.addOutput(a);
    expectConversionEquivalent(
        g, {RtValue(Tensor::fromData({-1, 2, -3, 4}, {2, 2})),
            RtValue(Scalar((combo & 1) != 0)),
            RtValue(Scalar((combo & 2) != 0))});
  }
}

// Loop whose body both reads the whole buffer and writes one row: the read
// must observe all previous iterations' writes.
TEST(EdgeCaseTest, LoopReadsWholeBufferEachIteration) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  Value* n = g.addInput(Type::integer(), "n");
  IRBuilder b(g);
  Value* a = b.clone(a0);
  Node* loop = b.makeLoop(n, {});
  Block* body = loop->block(0);
  {
    IRBuilder ib(g);
    ib.setInsertionPointToEnd(body);
    Value* total = ib.sumDim(a, 0);            // reads every row
    Value* row = ib.select(a, 0, body->param(0));
    ib.copy_(row, ib.add(row, total));         // then writes row i
  }
  g.addOutput(a);
  Rng rng(10);
  expectConversionEquivalent(
      g, {RtValue(rng.uniform({3, 2})), RtValue(Scalar(std::int64_t{3}))},
      1e-4);
}

// A mutation whose result is never observed: DCE should strip the whole
// functionalized chain.
TEST(EdgeCaseTest, UnobservedMutationIsEliminated) {
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* dead = b.clone(a0);
  b.fill_(b.select(dead, 0, b.constInt(0)), b.constFloat(1.0));
  g.addOutput(b.relu(a0));
  ir::verify(g);
  core::lowerInplaceOps(g);
  core::convertToTensorSSA(g);
  ir::verify(g);
  EXPECT_EQ(g.countNodes(), 1u) << toString(g);  // just the relu
}

// Mutating a graph input directly (no clone): the functional boundary drops
// caller-visible mutation but outputs must still be correct.
TEST(EdgeCaseTest, GraphInputMutationKeepsOutputSemantics) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* row = b.select(a, 0, b.constInt(0));
  b.fill_(row, b.constFloat(3.0));
  g.addOutput(b.relu(a));
  ir::verify(g);

  Interpreter interp;
  std::vector<RtValue> in1{RtValue(Tensor::zeros({2, 2}))};
  auto before = interp.run(g, in1);
  core::lowerInplaceOps(g);
  core::convertToTensorSSA(g);
  ir::verify(g);
  std::vector<RtValue> in2{RtValue(Tensor::zeros({2, 2}))};
  auto after = interp.run(g, in2);
  EXPECT_TRUE(allClose(before[0].tensor(), after[0].tensor(), 0.0));
  // The functionalized program no longer mutates the caller's tensor.
  EXPECT_EQ(in2[0].tensor().scalarAt(Shape{0, 0}), 0.0);
}

// Chained pipelines run back-to-back reuse compiled state (kernel cache).
TEST(EdgeCaseTest, PipelineRepeatedRunsAreStable) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* buf = b.clone(a);
  b.sigmoid_(b.select(buf, 0, b.constInt(0)));
  g.addOutput(buf);
  runtime::Pipeline p(runtime::PipelineKind::TensorSsa, g);
  Rng rng(11);
  Tensor t = rng.uniform({2, 3});
  std::vector<RtValue> in{RtValue(t)};
  auto first = p.run(in);
  auto second = p.run(in);
  EXPECT_TRUE(allClose(first[0].tensor(), second[0].tensor(), 0.0));
  EXPECT_GT(p.profiler().kernelLaunches(), 0);
}

}  // namespace
}  // namespace tssa
