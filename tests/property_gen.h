// Shared random-program generator used by property tests and repro tools.
#pragma once
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/ir/builder.h"
#include "src/runtime/pipeline.h"
#include "src/tensor/random.h"

namespace tssa::testing_support {

using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::OpKind;
using ir::Type;
using ir::Value;
using runtime::RtValue;

/// Random-program generator state: tracks live tensor values with their
/// runtime shapes so views and mutations stay in bounds.
class ProgramGenerator {
 public:
  ProgramGenerator(Graph& graph, Rng& rng) : graph_(graph), rng_(rng) {}

  struct Entry {
    Value* value;
    Shape shape;
  };

  /// Builds a random program with `numStatements` statements; returns inputs.
  std::vector<RtValue> generate(std::size_t numStatements) {
    IRBuilder builder(graph_);
    std::vector<RtValue> inputs;
    // 2-3 tensor inputs, cloned to make them mutable buffers.
    const int numInputs = 2 + static_cast<int>(rng_.nextInt(0, 1));
    for (int i = 0; i < numInputs; ++i) {
      Shape shape{rng_.nextInt(2, 4), rng_.nextInt(2, 4), rng_.nextInt(2, 4)};
      Value* in = graph_.addInput(Type::tensor(DType::Float32),
                                  "in" + std::to_string(i));
      inputs.emplace_back(rng_.uniform(shape, -2, 2));
      Value* buffer = builder.clone(in);
      live_.push_back({buffer, shape});
    }
    for (std::size_t s = 0; s < numStatements; ++s) emitStatement(builder, 0);
    // Every live value is observed as an output (maximizes the chance that
    // a bad rewrite is visible).
    for (const Entry& e : live_) graph_.addOutput(e.value);
    return inputs;
  }

 private:
  Entry& randomLive() {
    return live_[static_cast<std::size_t>(
        rng_.nextInt(0, static_cast<std::int64_t>(live_.size()) - 1))];
  }

  /// A random view of `e` (possibly chained), with its shape.
  Entry randomView(IRBuilder& b, const Entry& e) {
    Entry cur = e;
    const int depth = static_cast<int>(rng_.nextInt(1, 2));
    for (int i = 0; i < depth && !cur.shape.empty(); ++i) {
      const std::int64_t rank = static_cast<std::int64_t>(cur.shape.size());
      switch (rng_.nextInt(0, 2)) {
        case 0: {  // select
          const std::int64_t dim = rng_.nextInt(0, rank - 1);
          const std::int64_t idx =
              rng_.nextInt(0, cur.shape[static_cast<std::size_t>(dim)] - 1);
          cur.value = b.select(cur.value, dim, b.constInt(idx));
          cur.shape.erase(cur.shape.begin() + dim);
          break;
        }
        case 1: {  // slice
          const std::int64_t dim = rng_.nextInt(0, rank - 1);
          const std::int64_t extent = cur.shape[static_cast<std::size_t>(dim)];
          const std::int64_t start = rng_.nextInt(0, extent - 1);
          const std::int64_t end = rng_.nextInt(start + 1, extent);
          cur.value = b.slice(cur.value, dim, b.constInt(start),
                              b.constInt(end));
          cur.shape[static_cast<std::size_t>(dim)] = end - start;
          break;
        }
        default: {  // transpose (rank >= 2) or unsqueeze
          if (rank >= 2) {
            const std::int64_t d0 = rng_.nextInt(0, rank - 1);
            const std::int64_t d1 = rng_.nextInt(0, rank - 1);
            cur.value = b.transpose(cur.value, d0, d1);
            std::swap(cur.shape[static_cast<std::size_t>(d0)],
                      cur.shape[static_cast<std::size_t>(d1)]);
          } else {
            cur.value = b.unsqueeze(cur.value, 0);
            cur.shape.insert(cur.shape.begin(), 1);
          }
          break;
        }
      }
    }
    return cur;
  }

  void emitMutation(IRBuilder& b, const Entry& target) {
    switch (rng_.nextInt(0, 3)) {
      case 0: {  // copy_ from a same-shaped computed tensor
        Value* src = b.mul(b.relu(constLike(b)), constLike(b));
        b.copy_(target.value, src);
        break;
      }
      case 1:
        b.add_(target.value, constLike(b));
        break;
      case 2:
        b.relu_(target.value);
        break;
      default:
        b.fill_(target.value, b.constFloat(rng_.nextDouble(-1, 1)));
        break;
    }
  }

  Value* constLike(IRBuilder& b) {
    return b.constTensor(Tensor::full({}, Scalar(rng_.nextDouble(-2, 2))));
  }

  void emitStatement(IRBuilder& b, int depth) {
    const std::int64_t kind = rng_.nextInt(0, depth < 1 ? 9 : 7);
    if (kind <= 2) {
      // Pure compute on a whole live buffer -> new live value.
      Entry& e = randomLive();
      Value* v = nullptr;
      switch (kind) {
        case 0: v = b.sigmoid(e.value); break;
        case 1: v = b.add(e.value, constLike(b)); break;
        default: v = b.relu(e.value); break;
      }
      live_.push_back({v, e.shape});
      return;
    }
    if (kind <= 5) {
      // Mutation through a random view chain.
      Entry target = randomView(b, randomLive());
      emitMutation(b, target);
      return;
    }
    if (kind == 6) {
      // Read through a view, keep as live value.
      Entry v = randomView(b, randomLive());
      live_.push_back({b.relu(v.value), v.shape});
      return;
    }
    if (kind == 7) {
      // Snapshot a buffer (clone) - fresh origin for later mutations.
      Entry& e = randomLive();
      live_.push_back({b.clone(e.value), e.shape});
      return;
    }
    if (kind == 8) {
      // Branch: mutate inside one or both arms.
      Value* cond = b.constBool(rng_.nextBool());
      Node* ifNode = b.makeIf(cond, 0);
      for (Block* arm : ifNode->blocks()) {
        if (rng_.nextBool(0.7)) {
          IRBuilder ib(graph_);
          ib.setInsertionPointToEnd(arm);
          Entry target = randomView(ib, randomLive());
          emitMutation(ib, target);
        }
      }
      return;
    }
    // Loop over the leading dim of a live buffer, mutating row i. Bodies can
    // hold several statements; occasionally a nested inner loop mutates the
    // row element-wise — nested control flow that the parallelization pass
    // must reject (and the serial paths must still execute correctly).
    Entry& e = randomLive();
    if (e.shape.empty()) return;
    Value* trip = b.constInt(e.shape[0]);
    Node* loop = b.makeLoop(trip, {});
    Block* body = loop->block(0);
    IRBuilder ib(graph_);
    ib.setInsertionPointToEnd(body);
    Value* row = ib.select(e.value, 0, body->param(0));
    const int stmts = static_cast<int>(rng_.nextInt(1, 2));
    for (int s = 0; s < stmts; ++s) {
      if (rng_.nextBool()) {
        ib.add_(row, constLike(ib));
      } else {
        Value* other = ib.sigmoid(row);
        ib.copy_(row, other);
      }
    }
    if (e.shape.size() >= 2 && rng_.nextBool(0.3)) {
      Value* innerTrip = ib.constInt(e.shape[1]);
      Node* inner = ib.makeLoop(innerTrip, {});
      Block* innerBody = inner->block(0);
      IRBuilder iib(graph_);
      iib.setInsertionPointToEnd(innerBody);
      Value* cell = iib.select(row, 0, innerBody->param(0));
      iib.add_(cell, constLike(iib));
    }
  }

  Graph& graph_;
  Rng& rng_;
  std::vector<Entry> live_;
};

/// Random fused-element-region generator for the JIT differential fuzz
/// harness (texpr_fuzz_test.cpp). Builds a FusionGroup body of elementwise
/// compute plus Access/Assign view nodes over mixed dtypes, ranks, and
/// broadcasts, together with matching runtime inputs.
///
/// Decisions are split across two Rngs so the fuzz suite can bound JIT
/// compile count: everything that lands in the kernel-cache key (ops, attrs,
/// dtypes, ranks, contiguity — and shapes, which pin attrs like Reshape
/// sizes) comes from `structRng`; runtime-only values (tensor contents,
/// dynamic select indices / slice bounds) come from `dataRng`. Replaying a
/// structure seed with many data seeds exercises one compiled kernel against
/// many input values.
///
/// Value-safety invariant: the generator tracks a conservative magnitude
/// bound and a may-be-NaN flag per value, and only emits Cast-to-Int64 when
/// the operand is provably NaN-free and small — the double→int64 conversion
/// is undefined otherwise (in the interpreter's roundTo just as much as in
/// the generated code), and the fuzz suite runs under sanitizers.
class FusedRegionGenerator {
 public:
  FusedRegionGenerator(Graph& graph, Rng& structRng, Rng& dataRng)
      : graph_(graph), structRng_(structRng), dataRng_(dataRng) {}

  struct Built {
    std::vector<RtValue> inputs;  ///< one per body param
    const Block* body = nullptr;
    Node* group = nullptr;
  };

  Built build() {
    Built built;
    group_ = makeGroup();
    built.group = group_;
    built.body = body_;

    // Region base shape: every tensor param is a trailing suffix of it with
    // dims independently collapsed to 1, so any two values broadcast. A
    // slice of structures uses large extents to push outputs past the
    // parallel-dispatch threshold (exercises the threaded JIT path).
    const bool large = structRng_.nextBool(0.15);
    const int regionRank = static_cast<int>(structRng_.nextInt(1, 3));
    Shape base;
    for (int d = 0; d < regionRank; ++d)
      base.push_back(large && regionRank == 3 ? structRng_.nextInt(11, 12)
                                              : structRng_.nextInt(2, 4));

    const int numTensors = static_cast<int>(structRng_.nextInt(2, 3));
    for (int i = 0; i < numTensors; ++i) addTensorParam(built, base);

    IRBuilder b(graph_);
    b.setInsertionPointToEnd(body_);
    const int numNodes = static_cast<int>(structRng_.nextInt(2, 5));
    for (int s = 0; s < numNodes; ++s) {
      const std::int64_t kind = structRng_.nextInt(0, 9);
      if (kind <= 6) {
        emitEwise(b);
      } else if (kind <= 8) {
        emitAccess(b, built);
      } else {
        emitAssign(b, built);
      }
    }
    for (const Val& v : produced_) body_->addReturn(v.v);
    for (std::size_t i = 0; i < body_->numReturns(); ++i)
      group_->addOutput(Type::tensor());
    for (std::size_t i = 0; i < group_->numOutputs(); ++i)
      graph_.addOutput(group_->output(i));
    return built;
  }

 private:
  struct Val {
    Value* v = nullptr;
    Shape shape;
    DType dtype = DType::Float32;
    double bound = 0;    ///< conservative |value| bound
    bool mayNaN = false; ///< value can be NaN at runtime
  };

  Node* makeGroup() {
    IRBuilder b(graph_);
    Node* group = b.emitNode(OpKind::FusionGroup, {}, 0);
    body_ = group->addBlock();
    return group;
  }

  void addTensorParam(Built& built, const Shape& base) {
    Val val;
    const int rank = static_cast<int>(
        structRng_.nextInt(0, static_cast<std::int64_t>(base.size())));
    for (std::size_t d = base.size() - static_cast<std::size_t>(rank);
         d < base.size(); ++d) {
      val.shape.push_back(structRng_.nextBool(0.25) ? 1 : base[d]);
    }
    const std::int64_t dt = structRng_.nextInt(0, 9);
    // Non-contiguous inputs are a distinct cache-key class: pick from the
    // structure stream.
    const bool transposed = rank >= 2 && structRng_.nextBool(0.25);
    Tensor t;
    if (dt <= 5) {
      val.dtype = DType::Float32;
      val.bound = 2.0;
      t = dataRng_.uniform(val.shape, -2, 2);
    } else if (dt <= 7) {
      val.dtype = DType::Int64;
      val.bound = 3.0;
      t = dataRng_.randint(val.shape, -3, 3);
    } else {
      val.dtype = DType::Bool;
      val.bound = 1.0;
      t = dataRng_.bernoulli(val.shape, 0.5);
    }
    if (transposed) {
      // Materialize the transposed layout, then view it back: same logical
      // shape/content, non-contiguous strides.
      const auto r = static_cast<std::int64_t>(val.shape.size());
      t = t.transpose(r - 2, r - 1).contiguous().transpose(r - 2, r - 1);
    }
    Value* in = graph_.addInput(Type::tensor());
    Value* p = body_->addParam(in->type());
    group_->addInput(in);
    built.inputs.emplace_back(std::move(t));
    val.v = p;
    live_.push_back(val);
  }

  /// Adds a scalar body param carrying `value` at run time.
  Value* addScalarParam(Built& built, std::int64_t value) {
    Value* in = graph_.addInput(Type::integer());
    Value* p = body_->addParam(in->type());
    group_->addInput(in);
    built.inputs.emplace_back(Scalar(value));
    return p;
  }

  Val& pickLive() {
    return live_[static_cast<std::size_t>(structRng_.nextInt(
        0, static_cast<std::int64_t>(live_.size()) - 1))];
  }

  static bool broadcastable(const Shape& a, const Shape& b) {
    const std::size_t r = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < r; ++i) {
      const std::int64_t x = a[a.size() - 1 - i];
      const std::int64_t y = b[b.size() - 1 - i];
      if (x != y && x != 1 && y != 1) return false;
    }
    return true;
  }

  static Shape broadcast(const Shape& a, const Shape& b) {
    Shape out(std::max(a.size(), b.size()));
    for (std::size_t i = 0; i < out.size(); ++i) {
      const std::size_t ri = out.size() - 1 - i;
      const std::int64_t x = i < a.size() ? a[a.size() - 1 - i] : 1;
      const std::int64_t y = i < b.size() ? b[b.size() - 1 - i] : 1;
      out[ri] = std::max(x, y);
    }
    return out;
  }

  void push(Value* v, Shape shape, DType dtype, double bound, bool mayNaN) {
    Val val{v, std::move(shape), dtype, std::min(bound, 1e300), mayNaN};
    live_.push_back(val);
    produced_.push_back(val);
  }

  void emitEwise(IRBuilder& b) {
    Val& a = pickLive();
    // Find a broadcast partner; fall back to unary when none fits.
    Val* other = nullptr;
    for (int tries = 0; tries < 3 && other == nullptr; ++tries) {
      Val& cand = pickLive();
      if (broadcastable(a.shape, cand.shape)) other = &cand;
    }
    const Shape outShape =
        other != nullptr ? broadcast(a.shape, other->shape) : a.shape;
    const bool intSafe = !a.mayNaN && a.bound <= 1e12;
    const std::int64_t pick = structRng_.nextInt(0, 13);
    if (other != nullptr) {
      Val& o = *other;
      const DType promoted = promoteTypes(a.dtype, o.dtype);
      const bool arithOk = promoted != DType::Bool && a.bound <= 1e14 &&
                           o.bound <= 1e14;
      const double sum = a.bound + o.bound;
      const bool nan = a.mayNaN || o.mayNaN;
      switch (pick) {
        case 0:
        case 1:
          if (arithOk) {
            push(b.add(a.v, o.v), outShape, promoted, sum, nan);
            return;
          }
          break;
        case 2:
          if (arithOk) {
            push(b.sub(a.v, o.v), outShape, promoted, sum, nan);
            return;
          }
          break;
        case 3:
        case 4:
          // Int64 products must stay far from overflow: the wrap is UB in
          // the double→int64 rounding on both execution paths.
          if (arithOk &&
              (promoted != DType::Int64 || a.bound * o.bound <= 1e14)) {
            push(b.mul(a.v, o.v), outShape, promoted,
                 a.bound * o.bound, nan);
            return;
          }
          break;
        case 5:
          // Division by a random value: ±inf and 0/0 NaN are legal fuzz
          // outputs (allClose treats NaN==NaN and inf==inf as equal).
          push(b.div(a.v, o.v), outShape, DType::Float32, 1e300, true);
          return;
        case 6:
          if (arithOk) {
            push(b.minimum(a.v, o.v), outShape, promoted,
                 std::max(a.bound, o.bound), nan);
            return;
          }
          break;
        case 7:
          if (arithOk) {
            push(b.maximum(a.v, o.v), outShape, promoted,
                 std::max(a.bound, o.bound), nan);
            return;
          }
          break;
        case 8:
          push(b.gt(a.v, o.v), outShape, DType::Bool, 1.0, false);
          return;
        case 9:
          push(b.le(a.v, o.v), outShape, DType::Bool, 1.0, false);
          return;
        case 10:
          push(b.eq(a.v, o.v), outShape, DType::Bool, 1.0, false);
          return;
        case 11:
          push(b.logicalAnd(a.v, o.v), outShape, DType::Bool, 1.0, false);
          return;
        default:
          break;
      }
    }
    // Unary (also the fallback when the binary pick was unsafe).
    switch (pick % 8) {
      case 0:
        if (a.dtype != DType::Bool && a.bound <= 1e14) {
          push(b.neg(a.v), a.shape, a.dtype, a.bound, a.mayNaN);
          return;
        }
        break;
      case 1:
        push(b.relu(a.v), a.shape, a.dtype, a.bound, /*mayNaN=*/false);
        return;
      case 2:
        push(b.sigmoid(a.v), a.shape, DType::Float32, 1.0, a.mayNaN);
        return;
      case 3:
        push(b.tanh(a.v), a.shape, DType::Float32, 1.0, a.mayNaN);
        return;
      case 4:
        if (a.bound <= 8) {
          push(b.exp(a.v), a.shape, DType::Float32, 3000.0, a.mayNaN);
          return;
        }
        break;
      case 5:
        // sqrt of a negative is NaN: legal, tracked.
        push(b.sqrt(a.v), a.shape, DType::Float32,
             std::sqrt(std::max(a.bound, 1.0)), true);
        return;
      case 6:
        if (intSafe) {
          push(b.cast(a.v, DType::Int64), a.shape, DType::Int64, a.bound,
               false);
          return;
        }
        break;
      default:
        break;
    }
    push(b.logicalNot(a.v), a.shape, DType::Bool, 1.0, false);
  }

  Value* makeAccess(IRBuilder& b, Value* base, OpKind rule,
                    std::vector<Value*> dyn) {
    std::vector<Value*> inputs{base};
    inputs.insert(inputs.end(), dyn.begin(), dyn.end());
    Node* n = b.emitNode(OpKind::Access, std::move(inputs), 1);
    n->attrs().set("view", Scalar(static_cast<std::int64_t>(rule)));
    lastNode_ = n;
    return n->output();
  }

  void emitAccess(IRBuilder& b, Built& built) {
    Val& base = pickLive();
    const auto rank = static_cast<std::int64_t>(base.shape.size());
    if (rank == 0) {
      emitEwise(b);
      return;
    }
    switch (structRng_.nextInt(0, 6)) {
      case 0: {  // select, dynamic index (sometimes negative)
        const std::int64_t dim = structRng_.nextInt(0, rank - 1);
        const std::int64_t extent =
            base.shape[static_cast<std::size_t>(dim)];
        std::int64_t idx = dataRng_.nextInt(0, extent - 1);
        if (dataRng_.nextBool(0.3)) idx -= extent;  // negative, still valid
        Value* out = makeAccess(b, base.v, OpKind::Select,
                                {addScalarParam(built, idx)});
        lastNode_->attrs().set("dim", Scalar(dim));
        Shape s = base.shape;
        s.erase(s.begin() + dim);
        push(out, std::move(s), base.dtype, base.bound, base.mayNaN);
        return;
      }
      case 1: {  // slice with structurally-fixed output extent
        const std::int64_t dim = structRng_.nextInt(0, rank - 1);
        const std::int64_t extent =
            base.shape[static_cast<std::size_t>(dim)];
        const std::int64_t step = structRng_.nextInt(1, 2);
        const std::int64_t maxLen = (extent - 1) / step + 1;
        const std::int64_t len = structRng_.nextInt(1, maxLen);
        const std::int64_t covered = (len - 1) * step + 1;
        std::int64_t start = dataRng_.nextInt(0, extent - covered);
        std::int64_t end = start + covered;
        if (dataRng_.nextBool(0.3)) start -= extent;  // negative form
        if (dataRng_.nextBool(0.3) && end < extent) end -= extent;
        Value* out = makeAccess(b, base.v, OpKind::Slice,
                                {addScalarParam(built, start),
                                 addScalarParam(built, end)});
        lastNode_->attrs().set("dim", Scalar(dim));
        lastNode_->attrs().set("step", Scalar(step));
        Shape s = base.shape;
        s[static_cast<std::size_t>(dim)] = len;
        push(out, std::move(s), base.dtype, base.bound, base.mayNaN);
        return;
      }
      case 2: {  // transpose
        const std::int64_t d0 = structRng_.nextInt(0, rank - 1);
        const std::int64_t d1 = structRng_.nextInt(0, rank - 1);
        Value* out = makeAccess(b, base.v, OpKind::Transpose, {});
        lastNode_->attrs().set("dim0", Scalar(d0));
        lastNode_->attrs().set("dim1", Scalar(d1));
        Shape s = base.shape;
        std::swap(s[static_cast<std::size_t>(d0)],
                  s[static_cast<std::size_t>(d1)]);
        push(out, std::move(s), base.dtype, base.bound, base.mayNaN);
        return;
      }
      case 3: {  // permute
        std::vector<std::int64_t> dims(static_cast<std::size_t>(rank));
        for (std::int64_t i = 0; i < rank; ++i)
          dims[static_cast<std::size_t>(i)] = i;
        for (std::int64_t i = rank - 1; i > 0; --i)
          std::swap(dims[static_cast<std::size_t>(i)],
                    dims[static_cast<std::size_t>(
                        structRng_.nextInt(0, i))]);
        Value* out = makeAccess(b, base.v, OpKind::Permute, {});
        lastNode_->attrs().set("dims", dims);
        Shape s(base.shape.size());
        for (std::size_t i = 0; i < s.size(); ++i)
          s[i] = base.shape[static_cast<std::size_t>(dims[i])];
        push(out, std::move(s), base.dtype, base.bound, base.mayNaN);
        return;
      }
      case 4: {  // reshape (flatten to 1-D or split into two factors)
        const std::int64_t numel = numelOf(base.shape);
        Shape sizes;
        if (structRng_.nextBool() || numel <= 1) {
          sizes = {numel};
        } else {
          std::int64_t a = 1;
          for (std::int64_t f = 2; f * f <= numel; ++f)
            if (numel % f == 0) a = f;
          if (a == 1) a = numel;
          sizes = {a, numel / a};
        }
        Value* out = makeAccess(b, base.v, OpKind::Reshape, {});
        lastNode_->attrs().set(
            "sizes", std::vector<std::int64_t>(sizes.begin(), sizes.end()));
        push(out, std::move(sizes), base.dtype, base.bound, base.mayNaN);
        return;
      }
      case 5: {  // unsqueeze
        const std::int64_t dim = structRng_.nextInt(0, rank);
        Value* out = makeAccess(b, base.v, OpKind::Unsqueeze, {});
        lastNode_->attrs().set("dim", Scalar(dim));
        Shape s = base.shape;
        s.insert(s.begin() + dim, 1);
        push(out, std::move(s), base.dtype, base.bound, base.mayNaN);
        return;
      }
      default: {  // expand a size-1 dim (or fall back when none)
        std::int64_t oneDim = -1;
        for (std::size_t i = 0; i < base.shape.size(); ++i)
          if (base.shape[i] == 1) oneDim = static_cast<std::int64_t>(i);
        if (oneDim < 0) {
          emitEwise(b);
          return;
        }
        Shape sizes = base.shape;
        sizes[static_cast<std::size_t>(oneDim)] = structRng_.nextInt(2, 4);
        Value* out = makeAccess(b, base.v, OpKind::Expand, {});
        lastNode_->attrs().set(
            "sizes", std::vector<std::int64_t>(sizes.begin(), sizes.end()));
        push(out, std::move(sizes), base.dtype, base.bound, base.mayNaN);
        return;
      }
    }
  }

  void emitAssign(IRBuilder& b, Built& built) {
    Val& base = pickLive();
    const auto rank = static_cast<std::int64_t>(base.shape.size());
    if (rank == 0) {
      emitEwise(b);
      return;
    }
    // The written view's shape under the chosen rule, plus dynamic operands.
    OpKind rule = OpKind::Identity;
    Shape viewShape = base.shape;
    std::int64_t dim = 0;
    std::int64_t step = 1;
    std::vector<std::int64_t> dynVals;
    switch (structRng_.nextInt(0, 3)) {
      case 0:
        break;  // identity
      case 1: {
        rule = OpKind::Select;
        dim = structRng_.nextInt(0, rank - 1);
        const std::int64_t extent =
            base.shape[static_cast<std::size_t>(dim)];
        std::int64_t idx = dataRng_.nextInt(0, extent - 1);
        if (dataRng_.nextBool(0.3)) idx -= extent;
        dynVals.push_back(idx);
        viewShape.erase(viewShape.begin() + dim);
        break;
      }
      case 2: {
        rule = OpKind::Slice;
        dim = structRng_.nextInt(0, rank - 1);
        const std::int64_t extent =
            base.shape[static_cast<std::size_t>(dim)];
        step = structRng_.nextInt(1, 2);
        const std::int64_t maxLen = (extent - 1) / step + 1;
        const std::int64_t len = structRng_.nextInt(1, maxLen);
        const std::int64_t covered = (len - 1) * step + 1;
        const std::int64_t start = dataRng_.nextInt(0, extent - covered);
        dynVals.push_back(start);
        dynVals.push_back(start + covered);
        viewShape[static_cast<std::size_t>(dim)] = len;
        break;
      }
      default: {
        rule = OpKind::Transpose;
        dim = structRng_.nextInt(0, rank - 1);
        step = structRng_.nextInt(0, rank - 1);  // reused as dim1
        std::swap(viewShape[static_cast<std::size_t>(dim)],
                  viewShape[static_cast<std::size_t>(step)]);
        break;
      }
    }
    // Source: any live value broadcastable INTO the view (ranks must not
    // exceed the view's); fall back to identity self-assign when none fits.
    Val* src = nullptr;
    for (int tries = 0; tries < 4 && src == nullptr; ++tries) {
      Val& cand = pickLive();
      if (cand.shape.size() > viewShape.size() ||
          !broadcastable(cand.shape, viewShape) ||
          broadcast(cand.shape, viewShape) != viewShape)
        continue;
      // Written elements round to the base dtype: a NaN or huge source
      // into an Int64 base would be UB in that conversion.
      if (base.dtype == DType::Int64 && (cand.mayNaN || cand.bound > 1e14))
        continue;
      src = &cand;
    }
    if (src == nullptr) {
      rule = OpKind::Identity;
      dynVals.clear();
      src = &base;
    }
    std::vector<Value*> inputs{base.v, src->v};
    for (std::int64_t v : dynVals) inputs.push_back(addScalarParam(built, v));
    Node* n = b.emitNode(OpKind::Assign, std::move(inputs), 1);
    n->attrs().set("view", Scalar(static_cast<std::int64_t>(rule)));
    if (rule == OpKind::Select) {
      n->attrs().set("dim", Scalar(dim));
    } else if (rule == OpKind::Slice) {
      n->attrs().set("dim", Scalar(dim));
      n->attrs().set("step", Scalar(step));
    } else if (rule == OpKind::Transpose) {
      n->attrs().set("dim0", Scalar(dim));
      n->attrs().set("dim1", Scalar(step));
    }
    push(n->output(), base.shape, base.dtype,
         std::max(base.bound, src->bound), base.mayNaN || src->mayNaN);
  }

  Graph& graph_;
  Rng& structRng_;
  Rng& dataRng_;
  Node* group_ = nullptr;
  Block* body_ = nullptr;
  Node* lastNode_ = nullptr;
  std::vector<Val> live_;
  std::vector<Val> produced_;  ///< node outputs, returned in order
};

/// One step of a randomized cache schedule: worker `thread` looks up key
/// index `key`; if that lookup wins the compile (single-flight miss), the
/// compile sleeps `compileDelayUs` and throws iff `failCompile` — failures
/// exercise the negative-cache generation logic, delays stretch the
/// single-flight window so other workers pile onto the rendezvous.
struct CacheScheduleStep {
  std::size_t thread = 0;
  std::size_t key = 0;
  bool failCompile = false;
  int compileDelayUs = 0;
};

/// Random schedule generator for concurrent ProgramCache property tests
/// (lookup / evict / negative-entry interleavings). The schedule is data,
/// not timing: the test replays per-thread step lists concurrently and
/// asserts the cache's invariants (at most one compile per key per
/// generation) over whatever real interleaving occurs — every seed is a
/// different stress pattern, and a failing seed reproduces the pattern.
class ScheduleGenerator {
 public:
  struct Options {
    std::size_t threads = 4;
    std::size_t keys = 3;          ///< distinct program keys in play
    std::size_t steps = 64;        ///< total lookups across all threads
    double failProbability = 0.3;  ///< chance a won compile throws
    int maxCompileDelayUs = 400;   ///< won compiles sleep up to this long
  };

  explicit ScheduleGenerator(Rng& rng) : rng_(rng) {}

  /// Flat schedule in program order; steps are round-robin-free (thread
  /// assignment is random, so some threads are hot and some idle — the
  /// interesting case for rendezvous pile-ups).
  std::vector<CacheScheduleStep> generate(const Options& options) {
    std::vector<CacheScheduleStep> schedule;
    schedule.reserve(options.steps);
    for (std::size_t s = 0; s < options.steps; ++s) {
      CacheScheduleStep step;
      step.thread = static_cast<std::size_t>(rng_.nextInt(
          0, static_cast<std::int64_t>(options.threads) - 1));
      step.key = static_cast<std::size_t>(
          rng_.nextInt(0, static_cast<std::int64_t>(options.keys) - 1));
      step.failCompile = rng_.nextBool(options.failProbability);
      step.compileDelayUs =
          static_cast<int>(rng_.nextInt(0, options.maxCompileDelayUs));
      schedule.push_back(step);
    }
    return schedule;
  }

  /// The same schedule split into per-thread step lists (each preserves
  /// program order within its thread).
  static std::vector<std::vector<CacheScheduleStep>> perThread(
      const std::vector<CacheScheduleStep>& schedule, std::size_t threads) {
    std::vector<std::vector<CacheScheduleStep>> lanes(threads);
    for (const CacheScheduleStep& step : schedule)
      lanes[step.thread].push_back(step);
    return lanes;
  }

 private:
  Rng& rng_;
};

}  // namespace tssa::testing_support
