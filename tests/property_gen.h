// Shared random-program generator used by property tests and repro tools.
#pragma once
#include <cstdint>
#include <vector>

#include "src/ir/builder.h"
#include "src/runtime/pipeline.h"
#include "src/tensor/random.h"

namespace tssa::testing_support {

using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::OpKind;
using ir::Type;
using ir::Value;
using runtime::RtValue;

/// Random-program generator state: tracks live tensor values with their
/// runtime shapes so views and mutations stay in bounds.
class ProgramGenerator {
 public:
  ProgramGenerator(Graph& graph, Rng& rng) : graph_(graph), rng_(rng) {}

  struct Entry {
    Value* value;
    Shape shape;
  };

  /// Builds a random program with `numStatements` statements; returns inputs.
  std::vector<RtValue> generate(std::size_t numStatements) {
    IRBuilder builder(graph_);
    std::vector<RtValue> inputs;
    // 2-3 tensor inputs, cloned to make them mutable buffers.
    const int numInputs = 2 + static_cast<int>(rng_.nextInt(0, 1));
    for (int i = 0; i < numInputs; ++i) {
      Shape shape{rng_.nextInt(2, 4), rng_.nextInt(2, 4), rng_.nextInt(2, 4)};
      Value* in = graph_.addInput(Type::tensor(DType::Float32),
                                  "in" + std::to_string(i));
      inputs.emplace_back(rng_.uniform(shape, -2, 2));
      Value* buffer = builder.clone(in);
      live_.push_back({buffer, shape});
    }
    for (std::size_t s = 0; s < numStatements; ++s) emitStatement(builder, 0);
    // Every live value is observed as an output (maximizes the chance that
    // a bad rewrite is visible).
    for (const Entry& e : live_) graph_.addOutput(e.value);
    return inputs;
  }

 private:
  Entry& randomLive() {
    return live_[static_cast<std::size_t>(
        rng_.nextInt(0, static_cast<std::int64_t>(live_.size()) - 1))];
  }

  /// A random view of `e` (possibly chained), with its shape.
  Entry randomView(IRBuilder& b, const Entry& e) {
    Entry cur = e;
    const int depth = static_cast<int>(rng_.nextInt(1, 2));
    for (int i = 0; i < depth && !cur.shape.empty(); ++i) {
      const std::int64_t rank = static_cast<std::int64_t>(cur.shape.size());
      switch (rng_.nextInt(0, 2)) {
        case 0: {  // select
          const std::int64_t dim = rng_.nextInt(0, rank - 1);
          const std::int64_t idx =
              rng_.nextInt(0, cur.shape[static_cast<std::size_t>(dim)] - 1);
          cur.value = b.select(cur.value, dim, b.constInt(idx));
          cur.shape.erase(cur.shape.begin() + dim);
          break;
        }
        case 1: {  // slice
          const std::int64_t dim = rng_.nextInt(0, rank - 1);
          const std::int64_t extent = cur.shape[static_cast<std::size_t>(dim)];
          const std::int64_t start = rng_.nextInt(0, extent - 1);
          const std::int64_t end = rng_.nextInt(start + 1, extent);
          cur.value = b.slice(cur.value, dim, b.constInt(start),
                              b.constInt(end));
          cur.shape[static_cast<std::size_t>(dim)] = end - start;
          break;
        }
        default: {  // transpose (rank >= 2) or unsqueeze
          if (rank >= 2) {
            const std::int64_t d0 = rng_.nextInt(0, rank - 1);
            const std::int64_t d1 = rng_.nextInt(0, rank - 1);
            cur.value = b.transpose(cur.value, d0, d1);
            std::swap(cur.shape[static_cast<std::size_t>(d0)],
                      cur.shape[static_cast<std::size_t>(d1)]);
          } else {
            cur.value = b.unsqueeze(cur.value, 0);
            cur.shape.insert(cur.shape.begin(), 1);
          }
          break;
        }
      }
    }
    return cur;
  }

  void emitMutation(IRBuilder& b, const Entry& target) {
    switch (rng_.nextInt(0, 3)) {
      case 0: {  // copy_ from a same-shaped computed tensor
        Value* src = b.mul(b.relu(constLike(b)), constLike(b));
        b.copy_(target.value, src);
        break;
      }
      case 1:
        b.add_(target.value, constLike(b));
        break;
      case 2:
        b.relu_(target.value);
        break;
      default:
        b.fill_(target.value, b.constFloat(rng_.nextDouble(-1, 1)));
        break;
    }
  }

  Value* constLike(IRBuilder& b) {
    return b.constTensor(Tensor::full({}, Scalar(rng_.nextDouble(-2, 2))));
  }

  void emitStatement(IRBuilder& b, int depth) {
    const std::int64_t kind = rng_.nextInt(0, depth < 1 ? 9 : 7);
    if (kind <= 2) {
      // Pure compute on a whole live buffer -> new live value.
      Entry& e = randomLive();
      Value* v = nullptr;
      switch (kind) {
        case 0: v = b.sigmoid(e.value); break;
        case 1: v = b.add(e.value, constLike(b)); break;
        default: v = b.relu(e.value); break;
      }
      live_.push_back({v, e.shape});
      return;
    }
    if (kind <= 5) {
      // Mutation through a random view chain.
      Entry target = randomView(b, randomLive());
      emitMutation(b, target);
      return;
    }
    if (kind == 6) {
      // Read through a view, keep as live value.
      Entry v = randomView(b, randomLive());
      live_.push_back({b.relu(v.value), v.shape});
      return;
    }
    if (kind == 7) {
      // Snapshot a buffer (clone) - fresh origin for later mutations.
      Entry& e = randomLive();
      live_.push_back({b.clone(e.value), e.shape});
      return;
    }
    if (kind == 8) {
      // Branch: mutate inside one or both arms.
      Value* cond = b.constBool(rng_.nextBool());
      Node* ifNode = b.makeIf(cond, 0);
      for (Block* arm : ifNode->blocks()) {
        if (rng_.nextBool(0.7)) {
          IRBuilder ib(graph_);
          ib.setInsertionPointToEnd(arm);
          Entry target = randomView(ib, randomLive());
          emitMutation(ib, target);
        }
      }
      return;
    }
    // Loop over the leading dim of a live buffer, mutating row i. Bodies can
    // hold several statements; occasionally a nested inner loop mutates the
    // row element-wise — nested control flow that the parallelization pass
    // must reject (and the serial paths must still execute correctly).
    Entry& e = randomLive();
    if (e.shape.empty()) return;
    Value* trip = b.constInt(e.shape[0]);
    Node* loop = b.makeLoop(trip, {});
    Block* body = loop->block(0);
    IRBuilder ib(graph_);
    ib.setInsertionPointToEnd(body);
    Value* row = ib.select(e.value, 0, body->param(0));
    const int stmts = static_cast<int>(rng_.nextInt(1, 2));
    for (int s = 0; s < stmts; ++s) {
      if (rng_.nextBool()) {
        ib.add_(row, constLike(ib));
      } else {
        Value* other = ib.sigmoid(row);
        ib.copy_(row, other);
      }
    }
    if (e.shape.size() >= 2 && rng_.nextBool(0.3)) {
      Value* innerTrip = ib.constInt(e.shape[1]);
      Node* inner = ib.makeLoop(innerTrip, {});
      Block* innerBody = inner->block(0);
      IRBuilder iib(graph_);
      iib.setInsertionPointToEnd(innerBody);
      Value* cell = iib.select(row, 0, innerBody->param(0));
      iib.add_(cell, constLike(iib));
    }
  }

  Graph& graph_;
  Rng& rng_;
  std::vector<Entry> live_;
};

/// One step of a randomized cache schedule: worker `thread` looks up key
/// index `key`; if that lookup wins the compile (single-flight miss), the
/// compile sleeps `compileDelayUs` and throws iff `failCompile` — failures
/// exercise the negative-cache generation logic, delays stretch the
/// single-flight window so other workers pile onto the rendezvous.
struct CacheScheduleStep {
  std::size_t thread = 0;
  std::size_t key = 0;
  bool failCompile = false;
  int compileDelayUs = 0;
};

/// Random schedule generator for concurrent ProgramCache property tests
/// (lookup / evict / negative-entry interleavings). The schedule is data,
/// not timing: the test replays per-thread step lists concurrently and
/// asserts the cache's invariants (at most one compile per key per
/// generation) over whatever real interleaving occurs — every seed is a
/// different stress pattern, and a failing seed reproduces the pattern.
class ScheduleGenerator {
 public:
  struct Options {
    std::size_t threads = 4;
    std::size_t keys = 3;          ///< distinct program keys in play
    std::size_t steps = 64;        ///< total lookups across all threads
    double failProbability = 0.3;  ///< chance a won compile throws
    int maxCompileDelayUs = 400;   ///< won compiles sleep up to this long
  };

  explicit ScheduleGenerator(Rng& rng) : rng_(rng) {}

  /// Flat schedule in program order; steps are round-robin-free (thread
  /// assignment is random, so some threads are hot and some idle — the
  /// interesting case for rendezvous pile-ups).
  std::vector<CacheScheduleStep> generate(const Options& options) {
    std::vector<CacheScheduleStep> schedule;
    schedule.reserve(options.steps);
    for (std::size_t s = 0; s < options.steps; ++s) {
      CacheScheduleStep step;
      step.thread = static_cast<std::size_t>(rng_.nextInt(
          0, static_cast<std::int64_t>(options.threads) - 1));
      step.key = static_cast<std::size_t>(
          rng_.nextInt(0, static_cast<std::int64_t>(options.keys) - 1));
      step.failCompile = rng_.nextBool(options.failProbability);
      step.compileDelayUs =
          static_cast<int>(rng_.nextInt(0, options.maxCompileDelayUs));
      schedule.push_back(step);
    }
    return schedule;
  }

  /// The same schedule split into per-thread step lists (each preserves
  /// program order within its thread).
  static std::vector<std::vector<CacheScheduleStep>> perThread(
      const std::vector<CacheScheduleStep>& schedule, std::size_t threads) {
    std::vector<std::vector<CacheScheduleStep>> lanes(threads);
    for (const CacheScheduleStep& step : schedule)
      lanes[step.thread].push_back(step);
    return lanes;
  }

 private:
  Rng& rng_;
};

}  // namespace tssa::testing_support
