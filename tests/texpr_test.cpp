// Tests for the tensor-expression backend: fused bodies evaluated per
// element must agree exactly with node-by-node interpretation.
#include <gtest/gtest.h>

#include "src/core/fusion.h"
#include "src/core/lower_inplace.h"
#include "src/core/tensor_ssa.h"
#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/runtime/interpreter.h"
#include "src/tensor/random.h"
#include "src/texpr/texpr.h"
#include "tests/property_gen.h"

namespace tssa {
namespace {

using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::OpKind;
using ir::Type;
using ir::Value;
using runtime::Interpreter;
using runtime::RtValue;

/// Builds a FusionGroup node wrapping `makeBody`, returns the graph.
template <typename Fn>
std::unique_ptr<Graph> groupGraph(std::size_t numInputs, Fn&& makeBody) {
  auto g = std::make_unique<Graph>();
  std::vector<Value*> ins;
  for (std::size_t i = 0; i < numInputs; ++i)
    ins.push_back(g->addInput(Type::tensor()));
  IRBuilder b(*g);
  Node* group = b.emitNode(OpKind::FusionGroup, ins, 0);
  Block* body = group->addBlock();
  for (Value* in : ins) body->addParam(in->type());
  IRBuilder inner(*g);
  inner.setInsertionPointToEnd(body);
  makeBody(inner, body);
  for (std::size_t i = 0; i < body->numReturns(); ++i)
    group->addOutput(Type::tensor());
  for (std::size_t i = 0; i < group->numOutputs(); ++i)
    g->addOutput(group->output(i));
  ir::verify(*g);
  return g;
}

/// Runs a graph twice — texpr on and off — and expects identical results.
void expectTexprMatchesInterpreter(const Graph& g,
                                   std::vector<RtValue> inputs) {
  Interpreter withTexpr(nullptr, /*useTexpr=*/true);
  Interpreter withoutTexpr(nullptr, /*useTexpr=*/false);
  auto a = withTexpr.run(g, inputs);
  auto b = withoutTexpr.run(g, inputs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(allClose(a[i].tensor(), b[i].tensor(), 0.0))
        << "output " << i << " texpr vs interpreter:\n"
        << a[i].tensor().toString() << "\nvs\n"
        << b[i].tensor().toString();
  }
}

TEST(TexprTest, ElementwiseChain) {
  auto g = groupGraph(2, [](IRBuilder& b, Block* body) {
    Value* x = b.add(body->param(0), body->param(1));
    body->addReturn(b.relu(b.mul(x, body->param(0))));
  });
  Rng rng(1);
  expectTexprMatchesInterpreter(
      *g, {RtValue(rng.uniform({3, 4}, -2, 2)), RtValue(rng.uniform({3, 4}))});
}

TEST(TexprTest, BroadcastAndDTypePromotion) {
  auto g = groupGraph(2, [](IRBuilder& b, Block* body) {
    Value* x = b.add(body->param(0), body->param(1));  // [2,3,4] + [4]
    Value* m = b.gt(x, body->param(1));                // Bool
    body->addReturn(b.where(m, x, b.neg(x)));
  });
  Rng rng(2);
  expectTexprMatchesInterpreter(
      *g, {RtValue(rng.uniform({2, 3, 4}, -1, 1)),
           RtValue(rng.uniform({4}, -1, 1))});
}

TEST(TexprTest, AccessRules) {
  auto makeAccess = [](IRBuilder& b, Value* base, OpKind rule,
                       std::vector<Value*> dyn,
                       auto&& setAttrs) {
    std::vector<Value*> inputs{base};
    inputs.insert(inputs.end(), dyn.begin(), dyn.end());
    Node* n = b.emitNode(OpKind::Access, std::move(inputs), 1);
    n->attrs().set("view", Scalar(static_cast<std::int64_t>(rule)));
    setAttrs(n->attrs());
    return n->output();
  };
  auto g = groupGraph(2, [&](IRBuilder& b, Block* body) {
    Value* base = body->param(0);
    Value* idx = body->param(1);  // scalar
    Value* sel = makeAccess(b, base, OpKind::Select, {idx},
                            [](ir::AttrMap& a) { a.set("dim", Scalar(0)); });
    Value* tr = makeAccess(b, base, OpKind::Transpose, {},
                           [](ir::AttrMap& a) {
                             a.set("dim0", Scalar(0));
                             a.set("dim1", Scalar(1));
                           });
    Value* rs = makeAccess(b, base, OpKind::Reshape, {},
                           [](ir::AttrMap& a) {
                             a.set("sizes",
                                   std::vector<std::int64_t>{4, 3});
                           });
    body->addReturn(b.relu(sel));
    body->addReturn(b.relu(tr));
    body->addReturn(b.relu(rs));
  });
  // Patch the second graph input to scalar type.
  g->inputs()[1]->setType(Type::integer());
  Rng rng(3);
  expectTexprMatchesInterpreter(
      *g, {RtValue(rng.uniform({3, 4}, -2, 2)), RtValue(Scalar(1))});
}

TEST(TexprTest, AssignSelectAndSliceRegions) {
  auto g = groupGraph(3, [&](IRBuilder& b, Block* body) {
    Value* base = body->param(0);
    Value* src = body->param(1);
    Value* idx = body->param(2);
    Node* a1 = b.emitNode(OpKind::Assign, {base, src, idx}, 1);
    a1->attrs().set("view", Scalar(static_cast<std::int64_t>(OpKind::Select)));
    a1->attrs().set("dim", Scalar(0));
    // Then a strided slice write of constants folded by mul.
    Value* doubled = b.mul(a1->output(), a1->output());
    body->addReturn(doubled);
  });
  g->inputs()[2]->setType(Type::integer());
  Rng rng(4);
  expectTexprMatchesInterpreter(
      *g, {RtValue(rng.uniform({4, 3})), RtValue(rng.uniform({3})),
           RtValue(Scalar(2))});
}

TEST(TexprTest, SupportsGate) {
  // Reduction inside -> unsupported; pure elementwise -> supported.
  auto gRed = groupGraph(1, [](IRBuilder& b, Block* body) {
    body->addReturn(b.softmax(body->param(0), 0));
  });
  auto gEw = groupGraph(1, [](IRBuilder& b, Block* body) {
    body->addReturn(b.sigmoid(body->param(0)));
  });
  const Node* red = (*gRed->topBlock()->begin());
  const Node* ew = (*gEw->topBlock()->begin());
  EXPECT_FALSE(texpr::Kernel::supports(*red->block(0)));
  EXPECT_TRUE(texpr::Kernel::supports(*ew->block(0)));
  // Unsupported bodies still execute correctly via the interpreter path.
  Rng rng(5);
  expectTexprMatchesInterpreter(*gRed, {RtValue(rng.uniform({4}))});
}

TEST(TexprTest, RunStatsReportFlopsAndDonation) {
  auto g = groupGraph(2, [](IRBuilder& b, Block* body) {
    Node* assign = b.emitNode(OpKind::Assign,
                              {body->param(0), body->param(1)}, 1);
    assign->attrs().set("view",
                        Scalar(static_cast<std::int64_t>(OpKind::Identity)));
    assign->attrs().set("inplace", Scalar(true));
    body->addReturn(b.relu(assign->output()));
  });
  const Node* group = (*g->topBlock()->begin());
  texpr::Kernel kernel(*group->block(0));
  Rng rng(6);
  std::vector<RtValue> in{RtValue(rng.uniform({8, 8})),
                          RtValue(rng.uniform({8}))};
  texpr::Kernel::RunStats stats;
  auto out = kernel.run(in, &stats);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.flops, 64 + 64);  // assign + relu, one per element
  // Donation saves 2*(64-8)*4 bytes of round-trip traffic.
  EXPECT_EQ(stats.savedBytes, 2 * (64 - 8) * 4);
}

// Randomized: full pipelines already cross-check texpr numerics; this adds a
// focused texpr-on/off sweep over random programs compiled with TensorSSA.
class TexprRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(TexprRandomTest, TexprMatchesInterpretedFusion) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
  Graph g;
  testing_support::ProgramGenerator gen(g, rng);
  auto inputs = gen.generate(8);
  core::lowerInplaceOps(g);
  core::convertToTensorSSA(g);
  core::readonlyViewsToAccess(g, core::FusionPolicy::tensorssa());
  core::hoistConstants(g);
  core::fuseKernels(g, core::FusionPolicy::tensorssa());
  ir::verify(g);
  expectTexprMatchesInterpreter(g, inputs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TexprRandomTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace tssa
