// Unit tests for the graph-level IR: structure, uses, dominance, cloning,
// printing, verification.
#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"

namespace tssa::ir {
namespace {

TEST(IrTest, BuildSimpleGraph) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  Value* b = g.addInput(Type::tensor(), "b");
  IRBuilder builder(g);
  Value* c = builder.add(a, b);
  Value* d = builder.sigmoid(c);
  g.addOutput(d);

  EXPECT_EQ(g.countNodes(), 2u);
  EXPECT_EQ(c->definingNode()->kind(), OpKind::Add);
  EXPECT_TRUE(a->isParam());
  EXPECT_FALSE(c->isParam());
  EXPECT_EQ(c->uses().size(), 1u);
  EXPECT_EQ(c->uses()[0].user->kind(), OpKind::Sigmoid);
  EXPECT_EQ(d->uses().size(), 1u);  // the return sentinel
  EXPECT_EQ(d->uses()[0].user->kind(), OpKind::Return);
  verify(g);
}

TEST(IrTest, UseTrackingOnSetInput) {
  Graph g;
  Value* a = g.addInput(Type::tensor());
  Value* b = g.addInput(Type::tensor());
  IRBuilder builder(g);
  Value* c = builder.add(a, a);
  Node* n = c->definingNode();
  EXPECT_EQ(a->uses().size(), 2u);
  n->setInput(1, b);
  EXPECT_EQ(a->uses().size(), 1u);
  EXPECT_EQ(b->uses().size(), 1u);
  verify(g);
}

TEST(IrTest, InsertAndRemoveInputShiftsUseIndices) {
  Graph g;
  Value* a = g.addInput(Type::tensor());
  Value* b = g.addInput(Type::tensor());
  IRBuilder builder(g);
  Node* list = builder.emitNode(OpKind::ListConstruct, {a, b}, 1);
  list->insertInput(1, a);
  EXPECT_EQ(list->numInputs(), 3u);
  EXPECT_EQ(list->input(1), a);
  EXPECT_EQ(list->input(2), b);
  verify(g);
  list->removeInput(0);
  EXPECT_EQ(list->numInputs(), 2u);
  EXPECT_EQ(list->input(0), a);
  EXPECT_EQ(list->input(1), b);
  verify(g);
}

TEST(IrTest, ReplaceAllUsesWith) {
  Graph g;
  Value* a = g.addInput(Type::tensor());
  IRBuilder builder(g);
  Value* c = builder.relu(a);
  Value* d = builder.sigmoid(c);
  Value* e = builder.exp(c);
  g.addOutput(d);
  g.addOutput(e);
  Value* z = builder.tanh(a);
  c->replaceAllUsesWith(z);
  EXPECT_TRUE(c->uses().empty());
  EXPECT_EQ(z->uses().size(), 2u);
  EXPECT_EQ(d->definingNode()->input(0), z);
}

TEST(IrTest, NodeOrderAndMove) {
  Graph g;
  Value* a = g.addInput(Type::tensor());
  IRBuilder builder(g);
  Value* x = builder.relu(a);
  Value* y = builder.exp(a);
  Node* nx = x->definingNode();
  Node* ny = y->definingNode();
  EXPECT_TRUE(nx->isBefore(ny));
  EXPECT_FALSE(ny->isBefore(nx));
  ny->moveBefore(nx);
  EXPECT_TRUE(ny->isBefore(nx));
  EXPECT_EQ(g.topBlock()->front(), ny);
  EXPECT_EQ(g.topBlock()->back(), nx);
}

TEST(IrTest, DestroyReleasesUses) {
  Graph g;
  Value* a = g.addInput(Type::tensor());
  IRBuilder builder(g);
  Value* x = builder.relu(a);
  Value* y = builder.sigmoid(x);
  (void)y;
  Node* ny = y->definingNode();
  ny->destroy();
  EXPECT_EQ(x->uses().size(), 0u);
  EXPECT_EQ(g.countNodes(), 1u);
  // Destroying a node with used outputs must throw.
  Value* z = builder.exp(x);
  (void)z;
  EXPECT_THROW(x->definingNode()->destroy(), Error);
}

TEST(IrTest, LoopStructure) {
  Graph g;
  Value* n = g.addInput(Type::integer(), "n");
  Value* acc0 = g.addInput(Type::tensor(), "acc");
  IRBuilder builder(g);
  Node* loop = builder.makeLoop(n, {acc0});
  Block* body = loop->block(0);
  EXPECT_EQ(body->numParams(), 2u);
  EXPECT_EQ(body->param(0)->type().kind(), TypeKind::Int);
  IRBuilder inner(g);
  inner.setInsertionPointToEnd(body);
  Value* next = inner.relu(body->param(1));
  body->addReturn(next);
  g.addOutput(loop->output(0));
  verify(g);
  EXPECT_EQ(body->depth(), 1u);
  EXPECT_TRUE(g.topBlock()->encloses(body));
  EXPECT_FALSE(body->encloses(g.topBlock()));
}

TEST(IrTest, IfStructure) {
  Graph g;
  Value* c = g.addInput(Type::boolean(), "c");
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder builder(g);
  Node* ifNode = builder.makeIf(c, 1);
  IRBuilder inner(g);
  inner.setInsertionPointToEnd(ifNode->block(0));
  ifNode->block(0)->addReturn(inner.relu(a));
  inner.setInsertionPointToEnd(ifNode->block(1));
  ifNode->block(1)->addReturn(inner.sigmoid(a));
  g.addOutput(ifNode->output(0));
  verify(g);
}

TEST(IrTest, VerifierCatchesScopeViolation) {
  Graph g;
  Value* c = g.addInput(Type::boolean());
  Value* a = g.addInput(Type::tensor());
  IRBuilder builder(g);
  Node* ifNode = builder.makeIf(c, 1);
  IRBuilder inner(g);
  inner.setInsertionPointToEnd(ifNode->block(0));
  Value* hidden = inner.relu(a);
  ifNode->block(0)->addReturn(hidden);
  inner.setInsertionPointToEnd(ifNode->block(1));
  ifNode->block(1)->addReturn(inner.sigmoid(a));
  // Escape the scope: use a then-block value at top level.
  builder.setInsertionPointToEnd(g.topBlock());
  Value* bad = builder.exp(hidden);
  g.addOutput(bad);
  EXPECT_THROW(verify(g), Error);
}

TEST(IrTest, VerifierCatchesMalformedLoop) {
  Graph g;
  Value* n = g.addInput(Type::integer());
  Value* acc = g.addInput(Type::tensor());
  IRBuilder builder(g);
  Node* loop = builder.makeLoop(n, {acc});
  // Body forgot its return.
  g.addOutput(loop->output(0));
  EXPECT_THROW(verify(g), Error);
}

TEST(IrTest, DominanceAcrossBlocks) {
  Graph g;
  Value* n = g.addInput(Type::integer());
  Value* a = g.addInput(Type::tensor());
  IRBuilder builder(g);
  Value* pre = builder.relu(a);
  Node* loop = builder.makeLoop(n, {pre});
  Block* body = loop->block(0);
  IRBuilder inner(g);
  inner.setInsertionPointToEnd(body);
  Value* inLoop = inner.sigmoid(body->param(1));
  body->addReturn(inLoop);
  Value* post = builder.exp(loop->output(0));
  g.addOutput(post);

  Node* nPre = pre->definingNode();
  Node* nIn = inLoop->definingNode();
  Node* nPost = post->definingNode();
  EXPECT_TRUE(nPre->dominates(nIn));    // outer-before dominates inner
  EXPECT_TRUE(nPre->dominates(nPost));
  EXPECT_FALSE(nIn->dominates(nPost));  // inner does not dominate outer
  EXPECT_FALSE(nPost->dominates(nIn));
  EXPECT_FALSE(loop->dominates(nIn));   // container does not dominate body
  EXPECT_TRUE(nPre->isBefore(nIn));
  EXPECT_TRUE(loop->isBefore(nPost));
  EXPECT_TRUE(loop->isBefore(nIn));     // container begins before contents
  EXPECT_FALSE(nIn->isBefore(nPre));
}

TEST(IrTest, CloneGraphIsDeepAndIndependent) {
  Graph g;
  Value* n = g.addInput(Type::integer(), "n");
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder builder(g);
  Node* loop = builder.makeLoop(n, {builder.relu(a)});
  Block* body = loop->block(0);
  IRBuilder inner(g);
  inner.setInsertionPointToEnd(body);
  body->addReturn(inner.sigmoid(body->param(1)));
  g.addOutput(loop->output(0));
  verify(g);

  auto copy = cloneGraph(g);
  verify(*copy);
  EXPECT_EQ(copy->countNodes(), g.countNodes());
  EXPECT_EQ(toString(*copy).size(), toString(g).size());
  // Mutating the clone must not affect the original.
  IRBuilder cb(*copy);
  cb.relu(copy->inputs()[1]);
  EXPECT_EQ(copy->countNodes(), g.countNodes() + 1);
  verify(g);
  verify(*copy);
}

TEST(IrTest, PrinterShowsStructure) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  Value* n = g.addInput(Type::integer(), "n");
  IRBuilder builder(g);
  Value* cloned = builder.clone(a);
  Node* loop = builder.makeLoop(n, {cloned});
  Block* body = loop->block(0);
  IRBuilder inner(g);
  inner.setInsertionPointToEnd(body);
  Value* sel = inner.select(body->param(1), 0, body->param(0));
  Node* mut = inner.copy_(sel, inner.relu(sel));
  (void)mut;
  body->addReturn(body->param(1));
  g.addOutput(loop->output(0));

  const std::string text = toString(g);
  EXPECT_NE(text.find("prim::Loop"), std::string::npos);
  EXPECT_NE(text.find("aten::select[dim=0]"), std::string::npos);
  EXPECT_NE(text.find("aten::copy_"), std::string::npos);
  EXPECT_NE(text.find("block0("), std::string::npos);
  EXPECT_NE(text.find("-> ("), std::string::npos);
  EXPECT_NE(text.find("%a."), std::string::npos);
}

TEST(IrTest, AttrsTypedAccess) {
  Graph g;
  IRBuilder builder(g);
  Value* z = builder.zeros({2, 3}, DType::Float32);
  Node* n = z->definingNode();
  EXPECT_EQ(n->attrs().ints("sizes"), (std::vector<std::int64_t>{2, 3}));
  EXPECT_EQ(n->attrs().dtype("dtype"), DType::Float32);
  EXPECT_THROW(n->attrs().i("missing"), Error);
  EXPECT_THROW(n->attrs().s("sizes"), Error);
  EXPECT_EQ(n->attrs().iOr("missing", 7), 7);
}

TEST(OpKindTest, NamesAndCategories) {
  EXPECT_EQ(opName(OpKind::Copy_), "aten::copy_");
  EXPECT_EQ(opName(OpKind::Access), "immut::access");
  EXPECT_TRUE(isViewOp(OpKind::Select));
  EXPECT_TRUE(isViewOp(OpKind::Slice));
  EXPECT_FALSE(isViewOp(OpKind::Clone));
  EXPECT_TRUE(isMutationOp(OpKind::Copy_));
  EXPECT_TRUE(isMutationOp(OpKind::Sigmoid_));
  EXPECT_FALSE(isMutationOp(OpKind::Sigmoid));
  EXPECT_TRUE(isPureOp(OpKind::Add));
  EXPECT_TRUE(isPureOp(OpKind::Access));
  EXPECT_FALSE(isPureOp(OpKind::Update));
  EXPECT_FALSE(isPureOp(OpKind::Copy_));
  EXPECT_FALSE(isPureOp(OpKind::Select));  // aliasing, not pure
  EXPECT_TRUE(isFusableOp(OpKind::Assign));
  EXPECT_FALSE(isFusableOp(OpKind::Matmul));
  EXPECT_EQ(pureEquivalent(OpKind::Add_), OpKind::Add);
  EXPECT_EQ(pureEquivalent(OpKind::Copy_), OpKind::Copy_);
}

}  // namespace
}  // namespace tssa::ir
