// Unit tests for the out-of-place operator library.
#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/ops.h"
#include "src/tensor/random.h"

namespace tssa {
namespace {

TEST(OpsTest, AddBroadcast) {
  Tensor a = Tensor::fromData({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor b = Tensor::fromData({10, 20, 30}, {3});
  Tensor c = ops::add(a, b);
  EXPECT_EQ(c.sizes(), (Shape{2, 3}));
  EXPECT_EQ(c.scalarAt(Shape{1, 2}), 36.0);
  Tensor d = ops::add(a, Scalar(1.0));
  EXPECT_EQ(d.scalarAtLinear(0), 2.0);
}

TEST(OpsTest, ArithOnViews) {
  Tensor a = Tensor::fromData({1, 2, 3, 4}, {2, 2});
  Tensor t = a.transpose(0, 1);  // non-contiguous operand
  Tensor c = ops::mul(t, t);
  EXPECT_EQ(c.scalarAt(Shape{0, 1}), 9.0);
  EXPECT_EQ(c.scalarAt(Shape{1, 0}), 4.0);
}

TEST(OpsTest, IntPromotion) {
  Tensor a = Tensor::arange(3);  // Int64
  Tensor b = Tensor::fromData({0.5f, 0.5f, 0.5f}, {3});
  Tensor c = ops::add(a, b);
  EXPECT_EQ(c.dtype(), DType::Float32);
  EXPECT_FLOAT_EQ(static_cast<float>(c.scalarAtLinear(2)), 2.5f);
  Tensor d = ops::div(a, Scalar(2));
  EXPECT_EQ(d.dtype(), DType::Float32);
}

TEST(OpsTest, UnaryMath) {
  Tensor a = Tensor::fromData({-1, 0, 1}, {3});
  EXPECT_EQ(ops::relu(a).scalarAtLinear(0), 0.0);
  EXPECT_EQ(ops::neg(a).scalarAtLinear(2), -1.0);
  EXPECT_NEAR(ops::sigmoid(a).scalarAtLinear(1), 0.5, 1e-6);
  EXPECT_NEAR(ops::tanh(a).scalarAtLinear(2), std::tanh(1.0), 1e-6);
  EXPECT_NEAR(ops::exp(a).scalarAtLinear(2), std::exp(1.0), 1e-6);
  EXPECT_EQ(ops::abs(a).scalarAtLinear(0), 1.0);
  EXPECT_EQ(ops::clamp(a, Scalar(-0.5), Scalar(0.5)).scalarAtLinear(0), -0.5);
}

TEST(OpsTest, Comparisons) {
  Tensor a = Tensor::fromData({1, 2, 3}, {3});
  Tensor b = Tensor::fromData({3, 2, 1}, {3});
  Tensor lt = ops::lt(a, b);
  EXPECT_EQ(lt.dtype(), DType::Bool);
  EXPECT_EQ(lt.scalarAtLinear(0), 1);
  EXPECT_EQ(lt.scalarAtLinear(1), 0);
  EXPECT_EQ(ops::ge(a, b).scalarAtLinear(1), 1);
  EXPECT_EQ(ops::logicalNot(lt).scalarAtLinear(0), 0);
}

TEST(OpsTest, WhereAndMaskedFill) {
  Tensor cond = Tensor::fromData({1, 0, 1}, {3}).to(DType::Bool);
  Tensor a = Tensor::fromData({10, 20, 30}, {3});
  Tensor b = Tensor::fromData({-1, -2, -3}, {3});
  Tensor w = ops::where(cond, a, b);
  EXPECT_EQ(w.scalarAtLinear(0), 10.0);
  EXPECT_EQ(w.scalarAtLinear(1), -2.0);
  Tensor mf = ops::maskedFill(a, cond, Scalar(0.0));
  EXPECT_EQ(mf.scalarAtLinear(0), 0.0);
  EXPECT_EQ(mf.scalarAtLinear(1), 20.0);
}

TEST(OpsTest, Reductions) {
  Tensor a = Tensor::fromData({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_EQ(ops::sum(a).item().toDouble(), 21.0);
  Tensor s0 = ops::sum(a, 0);
  EXPECT_EQ(s0.sizes(), (Shape{3}));
  EXPECT_EQ(s0.scalarAtLinear(0), 5.0);
  Tensor s1k = ops::sum(a, 1, /*keepDim=*/true);
  EXPECT_EQ(s1k.sizes(), (Shape{2, 1}));
  EXPECT_EQ(s1k.scalarAtLinear(1), 15.0);
  EXPECT_EQ(ops::maxReduce(a, 1).scalarAtLinear(0), 3.0);
  EXPECT_EQ(ops::minReduce(a, 0).scalarAtLinear(2), 3.0);
  EXPECT_EQ(ops::mean(a, 1).scalarAtLinear(0), 2.0);
  Tensor am = ops::argmax(a, 1);
  EXPECT_EQ(am.dtype(), DType::Int64);
  EXPECT_EQ(am.scalarAtLinear(0), 2);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(7);
  Tensor a = rng.uniform({4, 9}, -5, 5);
  Tensor s = ops::softmax(a, 1);
  Tensor rows = ops::sum(s, 1);
  for (std::int64_t i = 0; i < 4; ++i)
    EXPECT_NEAR(rows.scalarAtLinear(i), 1.0, 1e-5);
  // Stability: huge logits must not produce NaN.
  Tensor big = Tensor::full({2, 2}, Scalar(1e30f));
  Tensor sb = ops::softmax(big, 1);
  EXPECT_NEAR(sb.scalarAtLinear(0), 0.5, 1e-5);
}

TEST(OpsTest, MatmulSmall) {
  Tensor a = Tensor::fromData({1, 2, 3, 4}, {2, 2});
  Tensor b = Tensor::fromData({5, 6, 7, 8}, {2, 2});
  Tensor c = ops::matmul(a, b);
  EXPECT_EQ(c.scalarAt(Shape{0, 0}), 19.0);
  EXPECT_EQ(c.scalarAt(Shape{0, 1}), 22.0);
  EXPECT_EQ(c.scalarAt(Shape{1, 0}), 43.0);
  EXPECT_EQ(c.scalarAt(Shape{1, 1}), 50.0);
  EXPECT_THROW(ops::matmul(a, Tensor::zeros({3, 2})), Error);
}

TEST(OpsTest, BmmMatchesPerBatchMatmul) {
  Rng rng(3);
  Tensor a = rng.uniform({2, 3, 4});
  Tensor b = rng.uniform({2, 4, 5});
  Tensor c = ops::bmm(a, b);
  EXPECT_EQ(c.sizes(), (Shape{2, 3, 5}));
  Tensor c0 = ops::matmul(a.select(0, 0), b.select(0, 0));
  EXPECT_TRUE(allClose(c.select(0, 0), c0));
}

TEST(OpsTest, CatAndStack) {
  Tensor a = Tensor::fromData({1, 2}, {1, 2});
  Tensor b = Tensor::fromData({3, 4, 5, 6}, {2, 2});
  std::vector<Tensor> parts{a, b};
  Tensor c = ops::cat(parts, 0);
  EXPECT_EQ(c.sizes(), (Shape{3, 2}));
  EXPECT_EQ(c.scalarAt(Shape{2, 1}), 6.0);

  std::vector<Tensor> rows{Tensor::fromData({1, 2}, {2}),
                           Tensor::fromData({3, 4}, {2})};
  Tensor s = ops::stack(rows, 0);
  EXPECT_EQ(s.sizes(), (Shape{2, 2}));
  Tensor s1 = ops::stack(rows, 1);
  EXPECT_EQ(s1.sizes(), (Shape{2, 2}));
  EXPECT_EQ(s1.scalarAt(Shape{0, 1}), 3.0);
}

TEST(OpsTest, IndexSelectAndGather) {
  Tensor a = Tensor::fromData({10, 11, 20, 21, 30, 31}, {3, 2});
  Tensor idx = Tensor::fromData(std::vector<std::int64_t>{2, 0}, {2});
  Tensor sel = ops::indexSelect(a, 0, idx);
  EXPECT_EQ(sel.sizes(), (Shape{2, 2}));
  EXPECT_EQ(sel.scalarAt(Shape{0, 0}), 30.0);
  EXPECT_EQ(sel.scalarAt(Shape{1, 1}), 11.0);

  Tensor gidx = Tensor::fromData(std::vector<std::int64_t>{1, 0, 0, 1, 2, 2},
                                 {3, 2});
  Tensor g = ops::gather(a, 0, gidx);
  EXPECT_EQ(g.scalarAt(Shape{0, 0}), 20.0);
  EXPECT_EQ(g.scalarAt(Shape{2, 1}), 31.0);
}

TEST(OpsTest, TopkArgsortCumsum) {
  Tensor a = Tensor::fromData({3, 1, 4, 1, 5}, {5});
  auto [values, indices] = ops::topk(a, 3);
  EXPECT_EQ(values.scalarAtLinear(0), 5.0);
  EXPECT_EQ(indices.scalarAtLinear(0), 4);
  EXPECT_EQ(values.scalarAtLinear(2), 3.0);

  Tensor order = ops::argsort(a, /*descending=*/true);
  EXPECT_EQ(order.scalarAtLinear(0), 4);
  EXPECT_EQ(order.scalarAtLinear(1), 2);

  Tensor cs = ops::cumsum(a, 0);
  EXPECT_EQ(cs.scalarAtLinear(4), 14.0);
}

}  // namespace
}  // namespace tssa
