// Tests for vertical fusion, horizontal parallelization, and the pipelines.
#include <gtest/gtest.h>

#include "src/core/dce.h"
#include "src/core/fusion.h"
#include "src/core/lower_inplace.h"
#include "src/tensor/ops.h"
#include "src/core/parallelize.h"
#include "src/core/tensor_ssa.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/runtime/pipeline.h"
#include "src/tensor/random.h"

namespace tssa {
namespace {

using core::FusionPolicy;
using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::OpKind;
using ir::Type;
using ir::Value;
using runtime::Pipeline;
using runtime::PipelineKind;
using runtime::RtValue;

std::size_t countKind(const Graph& g, OpKind kind) {
  std::size_t n = 0;
  std::vector<const Block*> stack{g.topBlock()};
  while (!stack.empty()) {
    const Block* b = stack.back();
    stack.pop_back();
    for (const Node* node : *b) {
      if (node->kind() == kind) ++n;
      for (const Block* inner : node->blocks()) stack.push_back(inner);
    }
  }
  return n;
}

TEST(FusionTest, FusesElementwiseChain) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  Value* b = g.addInput(Type::tensor(), "b");
  IRBuilder builder(g);
  Value* r = builder.relu(builder.mul(builder.add(a, b), b));
  g.addOutput(r);
  const std::size_t groups = core::fuseKernels(g, FusionPolicy::nnc());
  EXPECT_EQ(groups, 1u);
  EXPECT_EQ(countKind(g, OpKind::FusionGroup), 1u);
  EXPECT_EQ(countKind(g, OpKind::Add), 1u);  // lives inside the group now
  ir::verify(g);

  // Fused graph computes the same thing.
  runtime::Interpreter interp;
  Rng rng(1);
  Tensor ta = rng.uniform({8}, -1, 1);
  Tensor tb = rng.uniform({8}, -1, 1);
  std::vector<RtValue> in{RtValue(ta), RtValue(tb)};
  auto out = interp.run(g, in);
  Tensor expect = ops::relu(ops::mul(ops::add(ta, tb), tb));
  EXPECT_TRUE(allClose(out[0].tensor(), expect));
}

TEST(FusionTest, SingleOpIsNotFused) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder builder(g);
  g.addOutput(builder.relu(a));
  EXPECT_EQ(core::fuseKernels(g, FusionPolicy::nnc()), 0u);
  EXPECT_EQ(countKind(g, OpKind::FusionGroup), 0u);
}

TEST(FusionTest, MatmulBreaksGroups) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder builder(g);
  Value* x = builder.sigmoid(builder.add(a, a));
  Value* mm = builder.matmul(x, x);
  Value* y = builder.relu(builder.mul(mm, mm));
  g.addOutput(y);
  const std::size_t groups = core::fuseKernels(g, FusionPolicy::nnc());
  EXPECT_EQ(groups, 2u);
  EXPECT_EQ(countKind(g, OpKind::Matmul), 1u);  // stays at top level
  ir::verify(g);
}

TEST(FusionTest, MutationBreaksGroupsButAssignDoesNot) {
  // Imperative form: the copy_ is a fusion barrier for NNC-style fusion.
  Graph g;
  Value* a0 = g.addInput(Type::tensor(), "a");
  IRBuilder builder(g);
  Value* a = builder.clone(a0);
  Value* x = builder.sigmoid(builder.add(a, a));
  Value* row = builder.select(a, 0, builder.constInt(0));
  builder.copy_(row, builder.constTensor(Tensor::zeros({}).clone()));
  Value* y = builder.relu(builder.mul(x, x));
  g.addOutput(y);
  g.addOutput(a);
  auto gm = ir::cloneGraph(g);
  core::fuseKernels(*gm, FusionPolicy::nnc());
  // copy_ and select stay; two separate elementwise groups.
  EXPECT_EQ(countKind(*gm, OpKind::Copy_), 1u);
  EXPECT_EQ(countKind(*gm, OpKind::FusionGroup), 2u);

  // After TensorSSA conversion, the whole thing fuses into one group.
  core::lowerInplaceOps(g);
  core::convertToTensorSSA(g);
  core::hoistConstants(g);
  core::fuseKernels(g, FusionPolicy::tensorssa());
  core::eliminateDeadCode(g);
  ir::verify(g);
  EXPECT_EQ(countKind(g, OpKind::Copy_), 0u);
  EXPECT_EQ(countKind(g, OpKind::FusionGroup), 1u) << toString(g);
}

TEST(FusionTest, ReductionTailPolicy) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder builder(g);
  Value* x = builder.mul(builder.add(a, a), a);
  Value* s = builder.softmax(x, 0);
  g.addOutput(s);
  auto topLevel = [](const Graph& gr, OpKind kind) {
    std::size_t n = 0;
    for (const Node* node : *gr.topBlock()) {
      if (node->kind() == kind) ++n;
    }
    return n;
  };
  auto gNvf = ir::cloneGraph(g);
  core::fuseKernels(*gNvf, FusionPolicy::nvfuser());
  EXPECT_EQ(topLevel(*gNvf, OpKind::Softmax), 0u);  // absorbed into group
  EXPECT_EQ(topLevel(*gNvf, OpKind::FusionGroup), 1u);
  core::fuseKernels(g, FusionPolicy::nnc());
  EXPECT_EQ(topLevel(g, OpKind::Softmax), 1u);  // NNC: reduction stays out
}

TEST(FusionTest, HoistConstantsMakesRunsContiguous) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder builder(g);
  Value* x = builder.add(a, builder.constTensor(Tensor::ones({})));
  Value* y = builder.mul(x, builder.constTensor(Tensor::full({}, Scalar(2))));
  g.addOutput(y);
  // Consumer-sinking inside fuseKernels already repairs the run even when
  // the constants interrupt it textually...
  auto raw = ir::cloneGraph(g);
  EXPECT_EQ(core::fuseKernels(*raw, FusionPolicy::nnc()), 1u);
  ir::verify(*raw);
  // ...and hoisting also produces a contiguous run on its own.
  EXPECT_GE(core::hoistConstants(g), 1u);
  EXPECT_EQ(core::fuseKernels(g, FusionPolicy::nnc()), 1u);
  ir::verify(g);
}

TEST(ParallelizeTest, IndependentLoopBecomesParallelMap) {
  // The functionalized Figure-4 loop: b = assign(b, f(access(b, i)), i).
  Graph g;
  Value* b0 = g.addInput(Type::tensor(), "b");
  Value* n = g.addInput(Type::integer(), "n");
  IRBuilder b(g);
  Value* b1 = b.clone(b0);
  Node* loop = b.makeLoop(n, {});
  Block* body = loop->block(0);
  {
    IRBuilder i(g);
    i.setInsertionPointToEnd(body);
    Value* iv = body->param(0);
    Value* bi = i.select(b1, 0, iv);
    Value* v = i.add(bi, i.constTensor(Tensor::ones({})));
    Value* bt = i.select(b1, 0, iv);
    i.copy_(bt, v);
  }
  g.addOutput(b1);
  ir::verify(g);

  core::lowerInplaceOps(g);
  core::convertToTensorSSA(g);
  const std::size_t converted = core::parallelizeLoops(g);
  EXPECT_EQ(converted, 1u) << toString(g);
  EXPECT_EQ(countKind(g, OpKind::ParallelMap), 1u);
  EXPECT_EQ(countKind(g, OpKind::Loop), 0u);
  ir::verify(g);

  runtime::Interpreter interp;
  std::vector<RtValue> in{RtValue(Tensor::fromData({1, 2, 3}, {3})),
                          RtValue(Scalar(std::int64_t{3}))};
  auto out = interp.run(g, in);
  EXPECT_EQ(out[0].tensor().scalarAtLinear(0), 2.0);
  EXPECT_EQ(out[0].tensor().scalarAtLinear(2), 4.0);
}

TEST(ParallelizeTest, CarriedDependenceStaysSequential) {
  // h = tanh(h + x[i]) has a loop-carried dependence: must NOT parallelize.
  Graph g;
  Value* x = g.addInput(Type::tensor(), "x");
  Value* h0 = g.addInput(Type::tensor(), "h");
  Value* n = g.addInput(Type::integer(), "n");
  IRBuilder b(g);
  Node* loop = b.makeLoop(n, {h0});
  Block* body = loop->block(0);
  {
    IRBuilder i(g);
    i.setInsertionPointToEnd(body);
    Value* iv = body->param(0);
    Value* h = body->param(1);
    Value* xi = i.select(x, 0, iv);
    body->addReturn(i.tanh(i.add(h, xi)));
  }
  g.addOutput(loop->output(0));
  ir::verify(g);
  core::convertToTensorSSA(g);
  EXPECT_EQ(core::parallelizeLoops(g), 0u);
  EXPECT_EQ(countKind(g, OpKind::Loop), 1u);
}

TEST(ParallelizeTest, CrossSliceReadStaysSequential) {
  // b[i] = b[i-1] * 2: reads a different slice -> dependence across
  // iterations; the read index is derived from i, which is only allowed for
  // non-carried tensors.
  Graph g;
  Value* b0 = g.addInput(Type::tensor(), "b");
  Value* n = g.addInput(Type::integer(), "n");
  IRBuilder b(g);
  Value* b1 = b.clone(b0);
  Node* loop = b.makeLoop(n, {});
  Block* body = loop->block(0);
  {
    IRBuilder i(g);
    i.setInsertionPointToEnd(body);
    Value* iv = body->param(0);
    Value* prev = i.scalarAdd(iv, i.constInt(1));
    Value* bi = i.select(b1, 0, prev);
    Value* v = i.mul(bi, i.constTensor(Tensor::full({}, Scalar(2.0))));
    Value* bt = i.select(b1, 0, iv);
    i.copy_(bt, v);
  }
  g.addOutput(b1);
  core::lowerInplaceOps(g);
  core::convertToTensorSSA(g);
  EXPECT_EQ(core::parallelizeLoops(g), 0u) << toString(g);
}

// ---- Pipelines ----------------------------------------------------------------------

Graph* buildLoopWorkload(Graph& g) {
  // for i in range(n): b[i] = sigmoid(b[i] * 2 + 1)
  Value* b0 = g.addInput(Type::tensor(), "b");
  Value* n = g.addInput(Type::integer(), "n");
  IRBuilder b(g);
  Value* b1 = b.clone(b0);
  Node* loop = b.makeLoop(n, {});
  Block* body = loop->block(0);
  IRBuilder i(g);
  i.setInsertionPointToEnd(body);
  Value* iv = body->param(0);
  Value* bi = i.select(b1, 0, iv);
  Value* v = i.sigmoid(
      i.add(i.mul(bi, i.constTensor(Tensor::full({}, Scalar(2.0)))),
            i.constTensor(Tensor::ones({}))));
  Value* bt = i.select(b1, 0, iv);
  i.copy_(bt, v);
  g.addOutput(b1);
  ir::verify(g);
  return &g;
}

TEST(PipelineTest, AllPipelinesAgreeNumerically) {
  Graph g;
  buildLoopWorkload(g);
  Rng rng(11);
  Tensor b = rng.uniform({16, 8}, -2, 2);
  std::vector<RtValue> inputs{RtValue(b), RtValue(Scalar(std::int64_t{16}))};

  std::vector<RtValue> reference;
  for (PipelineKind kind : runtime::allPipelines()) {
    Pipeline p(kind, g);
    auto out = p.run(inputs);
    ASSERT_EQ(out.size(), 1u) << pipelineName(kind);
    if (reference.empty()) {
      reference = out;
    } else {
      EXPECT_TRUE(allClose(reference[0].tensor(), out[0].tensor()))
          << "pipeline " << pipelineName(kind) << " diverges";
    }
  }
}

TEST(PipelineTest, TensorSsaLaunchesFewestKernelsOnLoopWorkload) {
  Graph g;
  buildLoopWorkload(g);
  Rng rng(12);
  Tensor b = rng.uniform({16, 8});
  std::vector<RtValue> inputs{RtValue(b), RtValue(Scalar(std::int64_t{16}))};

  std::map<PipelineKind, std::int64_t> launches;
  std::map<PipelineKind, double> simUs;
  for (PipelineKind kind : runtime::allPipelines()) {
    Pipeline p(kind, g);
    p.run(inputs);
    launches[kind] = p.profiler().kernelLaunches();
    simUs[kind] = p.profiler().simTimeUs();
  }
  // Eager: ~3 kernels per iteration. TensorSSA: the loop collapses into one
  // ParallelMap kernel (+ the clone).
  EXPECT_LE(launches[PipelineKind::TensorSsa], 2);
  EXPECT_GE(launches[PipelineKind::Eager], 3 * 16);
  EXPECT_LT(launches[PipelineKind::TensorSsa],
            launches[PipelineKind::TorchScriptNnc]);
  // And it is the fastest under the device model.
  for (PipelineKind kind : runtime::allPipelines()) {
    if (kind == PipelineKind::TensorSsa) continue;
    EXPECT_LT(simUs[PipelineKind::TensorSsa], simUs[kind])
        << "vs " << pipelineName(kind);
  }
}

TEST(PipelineTest, CompiledGraphStructureMatchesEnvelope) {
  Graph g;
  buildLoopWorkload(g);
  Pipeline eager(PipelineKind::Eager, g);
  EXPECT_EQ(countKind(eager.compiled(), OpKind::Copy_), 1u);
  EXPECT_EQ(countKind(eager.compiled(), OpKind::FusionGroup), 0u);

  Pipeline nnc(PipelineKind::TorchScriptNnc, g);
  EXPECT_EQ(countKind(nnc.compiled(), OpKind::Copy_), 1u);  // mutation kept

  Pipeline inductor(PipelineKind::DynamoInductor, g);
  // Mutation crosses control flow: dataflow functionalization bails.
  EXPECT_EQ(countKind(inductor.compiled(), OpKind::Copy_), 1u);

  Pipeline tssa(PipelineKind::TensorSsa, g);
  EXPECT_EQ(countKind(tssa.compiled(), OpKind::Copy_), 0u);
  EXPECT_EQ(countKind(tssa.compiled(), OpKind::ParallelMap), 1u);
}

}  // namespace
}  // namespace tssa
