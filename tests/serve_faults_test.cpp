// Fault-injection suite for the serving robustness layer (ISSUE 5):
//   (a) compile failure → negative cache + fallback pipeline, co-batched
//       peers still bitwise-correct, other keys unaffected,
//   (b) kernel throw mid-batch → the batch is re-executed de-coalesced and
//       only the faulty request's future throws,
//   (c) deadline expiry at admission, in the batcher (a tight deadline
//       seals early), and in the execution queue (virtual seal delay),
//   (d) bounded admission: engine queue depth and per-session in-flight
//       caps shed with RejectReason::QueueFull,
//   (e) ProgramCache negative-TTL generations and a randomized concurrent
//       schedule property (single-flight per key per generation).
// Every fault is scripted through serve::FaultInjector — no sleeps on the
// injection paths, deterministic under TSan/ASan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/serve/engine.h"
#include "src/serve/fault_injector.h"
#include "src/tensor/random.h"
#include "tests/property_gen.h"

namespace tssa {
namespace {

using runtime::PipelineKind;
using runtime::RtValue;
using serve::Engine;
using serve::EngineOptions;
using serve::FaultInjector;
using serve::ProgramCache;
using serve::ProgramKey;
using serve::RejectedError;
using serve::RejectReason;
using serve::Request;
using serve::Response;
using serve::Session;
using workloads::WorkloadConfig;

WorkloadConfig smallConfig(std::int64_t batch = 1, std::int64_t seqLen = 6) {
  WorkloadConfig c;
  c.batch = batch;
  c.seqLen = seqLen;
  return c;
}

/// Fresh random inputs shaped like the registry's example tuple, so distinct
/// requests carry distinct payloads.
std::vector<RtValue> randomInputs(const std::string& workload,
                                  const WorkloadConfig& config,
                                  std::uint64_t dataSeed) {
  std::vector<RtValue> inputs = Engine::defaultInputs(workload, config);
  Rng rng(dataSeed);
  for (RtValue& v : inputs) {
    if (!v.isTensor() || v.tensor().dtype() != DType::Float32) continue;
    Tensor fresh = rng.normal(v.tensor().sizes(), 0.0, 0.5);
    v = RtValue(fresh);
  }
  return inputs;
}

/// Ground truth: the reference (eager) pipeline run solo on the same inputs.
std::vector<RtValue> referenceOutputs(const std::string& workload,
                                      const WorkloadConfig& config,
                                      const std::vector<RtValue>& inputs) {
  workloads::Workload w = workloads::buildWorkload(workload, config);
  runtime::Pipeline pipeline(PipelineKind::Eager, *w.graph);
  return pipeline.run(inputs);
}

RejectReason rejectionReasonOf(std::future<Response>& future) {
  try {
    future.get();
  } catch (const RejectedError& e) {
    return e.reason();
  }
  ADD_FAILURE() << "future did not throw RejectedError";
  return RejectReason::Deadline;
}

// ---- (a) compile failure → negative cache + fallback -----------------------

TEST(ServeFaultsTest, CompileFailureServesBatchThroughFallback) {
  FaultInjector injector;
  injector.failCompilesForKeyContaining("lstm");

  EngineOptions options;
  options.maxBatch = 3;
  options.maxWaitUs = 60'000'000;  // only "full" seals this batch
  options.faultInjector = &injector;
  Engine engine(options);
  Session session = engine.openSession("faulty");

  const WorkloadConfig config = smallConfig();
  std::vector<std::vector<RtValue>> payloads;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 3; ++i) {
    Request r;
    r.workload = "lstm";
    r.config = config;
    r.inputs = randomInputs("lstm", config, 100 + i);
    payloads.push_back(r.inputs);
    futures.push_back(session.submit(std::move(r)));
  }

  for (int i = 0; i < 3; ++i) {
    Response resp = futures[static_cast<std::size_t>(i)].get();
    EXPECT_TRUE(resp.fallback);
    EXPECT_FALSE(resp.cacheHit);
    EXPECT_EQ(resp.batchedWith, 1);
    // Degraded, not wrong: fallback outputs match the reference pipeline
    // bitwise for each co-batched peer's own payload.
    EXPECT_TRUE(bench::outputsBitwiseEqual(
        resp.outputs,
        referenceOutputs("lstm", config,
                         payloads[static_cast<std::size_t>(i)])));
  }

  const serve::MetricsSnapshot snap = engine.metrics();
  EXPECT_EQ(snap.fallbackRequests, 3u);
  EXPECT_EQ(snap.rejectedTotal(), 0u);  // degraded, never rejected
  EXPECT_GE(snap.cacheCompileFailures, 1u);
  EXPECT_GE(injector.faultsInjected(), 1u);
}

TEST(ServeFaultsTest, BrokenKeyLeavesOtherWorkloadsUntouched) {
  // The acceptance scenario: every compile for one key fails; a mixed run
  // over all registered workloads still completes — the broken key via
  // fallback, everything else specialized as usual.
  FaultInjector injector;
  injector.failCompilesForKeyContaining("nasrnn");

  EngineOptions options;
  options.maxBatch = 1;  // one request per workload: keep it solo
  options.faultInjector = &injector;
  Engine engine(options);
  Session session = engine.openSession("mixed");

  for (const std::string& name : workloads::workloadNames()) {
    const WorkloadConfig config = smallConfig();
    std::vector<RtValue> inputs = randomInputs(name, config, 7);
    Request r;
    r.workload = name;
    r.config = config;
    r.inputs = inputs;
    Response resp = session.infer(std::move(r));
    EXPECT_EQ(resp.fallback, name == "nasrnn") << name;
    if (name == "nasrnn") {
      EXPECT_FALSE(resp.cacheHit);
    }
    EXPECT_TRUE(bench::outputsBitwiseEqual(
        resp.outputs, referenceOutputs(name, config, inputs)))
        << name;
  }

  const serve::MetricsSnapshot snap = engine.metrics();
  EXPECT_EQ(snap.rejectedTotal(), 0u);
  EXPECT_EQ(snap.fallbackRequests, 1u);
  EXPECT_EQ(snap.errors, 0u);
}

TEST(ServeFaultsTest, RepeatedTrafficForBrokenKeyPaysOneCompileAttempt) {
  FaultInjector injector;
  injector.failCompilesForKeyContaining("lstm");

  EngineOptions options;
  options.maxBatch = 1;
  options.compileFailureTtlUs = 60'000'000;  // long TTL: one attempt total
  options.faultInjector = &injector;
  Engine engine(options);

  for (int i = 0; i < 4; ++i) {
    Request r;
    r.workload = "lstm";
    r.config = smallConfig();
    Response resp = engine.submit(std::move(r)).get();
    EXPECT_TRUE(resp.fallback);
  }
  // One specialized compile attempt hit the injector; the other three
  // requests were served the cached failure (negative hits), then degraded.
  EXPECT_EQ(engine.cacheStats().compileFailures, 1u);
  EXPECT_EQ(engine.cacheStats().negativeHits, 3u);
  EXPECT_EQ(engine.metrics().fallbackRequests, 4u);
}

TEST(ServeFaultsTest, CompileFailureRejectsWhenFallbackDisabled) {
  FaultInjector injector;
  injector.failNthCompile(1);

  EngineOptions options;
  options.maxBatch = 1;
  options.fallbackOnCompileFailure = false;
  options.faultInjector = &injector;
  Engine engine(options);

  Request r;
  r.workload = "lstm";
  r.config = smallConfig();
  std::future<Response> future = engine.submit(std::move(r));
  EXPECT_EQ(rejectionReasonOf(future), RejectReason::CompileFailed);
  EXPECT_EQ(engine.metrics().rejectedFor(RejectReason::CompileFailed), 1u);
}

// ---- (b) kernel throw mid-batch --------------------------------------------

TEST(ServeFaultsTest, KernelThrowMidBatchFailsOnlyTheFaultyRequest) {
  FaultInjector injector;
  // Run 1 is the coalesced batch: poison it to force de-coalescing. The
  // solo re-runs are runs 2, 3, 4 in request order; poison run 3 so the
  // middle request is the (only) faulty one.
  injector.throwOnKernelLaunch(1, 1);
  injector.throwOnKernelLaunch(3, 1);

  EngineOptions options;
  options.maxBatch = 3;
  options.maxWaitUs = 60'000'000;  // seal on "full" only
  options.executeConcurrency = 1;  // one batch in flight: runs don't overlap
  options.faultInjector = &injector;
  Engine engine(options);

  const WorkloadConfig config = smallConfig();
  std::vector<std::vector<RtValue>> payloads;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 3; ++i) {
    Request r;
    r.workload = "lstm";
    r.config = config;
    r.inputs = randomInputs("lstm", config, 200 + i);
    payloads.push_back(r.inputs);
    futures.push_back(engine.submit(std::move(r)));
  }

  // Requests 0 and 2 are re-executed solo and come back correct.
  for (int i : {0, 2}) {
    Response resp = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(resp.batchedWith, 1);
    EXPECT_FALSE(resp.fallback);
    EXPECT_TRUE(bench::outputsBitwiseEqual(
        resp.outputs,
        referenceOutputs("lstm", config,
                         payloads[static_cast<std::size_t>(i)])));
  }
  // Request 1's solo run hit the armed launch fault: only its future throws.
  EXPECT_THROW(futures[1].get(), serve::InjectedFault);

  const serve::MetricsSnapshot snap = engine.metrics();
  EXPECT_EQ(snap.decoalescedBatches, 1u);
  EXPECT_EQ(snap.errors, 1u);
  EXPECT_EQ(snap.requests, 2u);
  EXPECT_EQ(snap.rejectedTotal(), 0u);
  EXPECT_EQ(injector.faultsInjected(), 2u);
}

TEST(ServeFaultsTest, KernelThrowOnSoloRequestDeliversTheError) {
  FaultInjector injector;
  injector.throwOnKernelLaunch(1, 2);

  EngineOptions options;
  options.maxBatch = 1;
  options.faultInjector = &injector;
  Engine engine(options);

  Request r;
  r.workload = "lstm";
  r.config = smallConfig();
  std::future<Response> future = engine.submit(std::move(r));
  EXPECT_THROW(future.get(), serve::InjectedFault);
  EXPECT_EQ(engine.metrics().errors, 1u);

  // The engine (and the cached program) survive the fault: the next
  // request for the same key executes normally.
  Request again;
  again.workload = "lstm";
  again.config = smallConfig();
  Response resp = engine.submit(std::move(again)).get();
  EXPECT_FALSE(resp.fallback);
}

// ---- (c) deadlines ---------------------------------------------------------

TEST(ServeFaultsTest, ExpiredDeadlineIsRejectedAtAdmission) {
  FaultInjector injector;
  EngineOptions options;
  options.faultInjector = &injector;
  Engine engine(options);

  Request r;
  r.workload = "lstm";
  r.config = smallConfig();
  r.deadlineUs = -1;  // already expired
  std::future<Response> future = engine.submit(std::move(r));
  EXPECT_EQ(rejectionReasonOf(future), RejectReason::Deadline);
  EXPECT_EQ(engine.metrics().rejectedFor(RejectReason::Deadline), 1u);
  EXPECT_EQ(injector.sealsSeen(), 0u);  // never reached the batcher
}

TEST(ServeFaultsTest, DeadlineExpiryInExecutionQueueShedsBeforeRunning) {
  // The batch stalls (virtually) for 10 s between seal and execution; the
  // request's 1 s deadline expires in the queue. No wall-clock sleeps.
  FaultInjector injector;
  injector.delayNthBatchSeal(1, 10'000'000);

  EngineOptions options;
  options.maxBatch = 1;
  options.faultInjector = &injector;
  Engine engine(options);

  Request r;
  r.workload = "lstm";
  r.config = smallConfig();
  r.deadlineUs = 1'000'000;
  std::future<Response> future = engine.submit(std::move(r));
  EXPECT_EQ(rejectionReasonOf(future), RejectReason::Deadline);

  const serve::MetricsSnapshot snap = engine.metrics();
  EXPECT_EQ(snap.rejectedFor(RejectReason::Deadline), 1u);
  EXPECT_EQ(snap.requests, 0u);  // the work was shed, not executed late
  EXPECT_EQ(injector.runsSeen(), 0u);
}

TEST(ServeFaultsTest, TighterDeadlineArrivalShortensTheBatchWait) {
  // Regression for the batcher's wake-on-deadline-change: request A opens a
  // batch with a 60 s window; request B joins with a 200 ms deadline, which
  // must pull the seal forward (and actually wake the timer). If the timer
  // kept waiting on the original window this test would time out.
  EngineOptions options;
  options.maxBatch = 8;
  options.maxWaitUs = 60'000'000;
  Engine engine(options);

  const WorkloadConfig config = smallConfig();
  Request a;
  a.workload = "lstm";
  a.config = config;
  a.inputs = randomInputs("lstm", config, 1);
  std::future<Response> futureA = engine.submit(std::move(a));

  Request b;
  b.workload = "lstm";
  b.config = config;
  b.inputs = randomInputs("lstm", config, 2);
  b.deadlineUs = 200'000;
  std::future<Response> futureB = engine.submit(std::move(b));

  // Generous bound, still far below the 60 s window the fix removes.
  ASSERT_EQ(futureB.wait_for(std::chrono::seconds(20)),
            std::future_status::ready);
  Response respB = futureB.get();
  Response respA = futureA.get();
  EXPECT_EQ(respA.batchedWith, 2);  // sealed together, early
  EXPECT_EQ(respB.batchedWith, 2);
}

// ---- (d) bounded admission -------------------------------------------------

TEST(ServeFaultsTest, QueueFullShedsBeyondMaxQueueDepth) {
  EngineOptions options;
  options.maxBatch = 8;            // requests park in the open batch...
  options.maxWaitUs = 60'000'000;  // ...for as long as the test needs
  options.maxQueueDepth = 4;
  Engine engine(options);
  Session session = engine.openSession("overload");

  const WorkloadConfig config = smallConfig();
  std::vector<std::future<Response>> admitted;
  for (int i = 0; i < 4; ++i) {
    Request r;
    r.workload = "lstm";
    r.config = config;
    r.inputs = randomInputs("lstm", config, 300 + i);
    admitted.push_back(session.submit(std::move(r)));
  }

  Request overflow;
  overflow.workload = "lstm";
  overflow.config = config;
  overflow.inputs = randomInputs("lstm", config, 399);
  std::future<Response> shed = session.submit(std::move(overflow));
  EXPECT_EQ(rejectionReasonOf(shed), RejectReason::QueueFull);

  engine.drain();  // seal the parked batch and finish the admitted four
  for (auto& f : admitted) {
    Response resp = f.get();
    EXPECT_EQ(resp.batchedWith, 4);
  }
  const serve::MetricsSnapshot snap = engine.metrics();
  EXPECT_EQ(snap.rejectedFor(RejectReason::QueueFull), 1u);
  EXPECT_EQ(snap.requests, 4u);
}

TEST(ServeFaultsTest, PerSessionInFlightCapShedsOnlyThatSession) {
  EngineOptions options;
  options.maxBatch = 8;
  options.maxWaitUs = 60'000'000;
  options.maxInFlightPerSession = 2;
  Engine engine(options);
  Session greedy = engine.openSession("greedy");
  Session modest = engine.openSession("modest");

  const WorkloadConfig config = smallConfig();
  auto makeRequest = [&](std::uint64_t seed) {
    Request r;
    r.workload = "lstm";
    r.config = config;
    r.inputs = randomInputs("lstm", config, seed);
    return r;
  };

  std::vector<std::future<Response>> ok;
  ok.push_back(greedy.submit(makeRequest(1)));
  ok.push_back(greedy.submit(makeRequest(2)));
  EXPECT_EQ(greedy.inFlight(), 2);

  std::future<Response> third = greedy.submit(makeRequest(3));
  EXPECT_EQ(rejectionReasonOf(third), RejectReason::QueueFull);

  // The other session is not penalized for its neighbour's backlog.
  ok.push_back(modest.submit(makeRequest(4)));

  engine.drain();
  for (auto& f : ok) f.get();
  EXPECT_EQ(greedy.inFlight(), 0);
  EXPECT_EQ(modest.inFlight(), 0);
  EXPECT_EQ(engine.metrics().rejectedFor(RejectReason::QueueFull), 1u);
}

TEST(ServeFaultsTest, ShutdownRejectsNewSubmitsAndDrainsAdmitted) {
  EngineOptions options;
  options.maxBatch = 1;
  Engine engine(options);

  Request before;
  before.workload = "lstm";
  before.config = smallConfig();
  std::future<Response> admitted = engine.submit(std::move(before));

  engine.shutdown();
  EXPECT_NO_THROW(admitted.get());  // admitted work is finished, not dropped

  Request after;
  after.workload = "lstm";
  after.config = smallConfig();
  std::future<Response> rejected = engine.submit(std::move(after));
  EXPECT_EQ(rejectionReasonOf(rejected), RejectReason::ShuttingDown);
  EXPECT_EQ(engine.metrics().rejectedFor(RejectReason::ShuttingDown), 1u);
}

TEST(ServeFaultsTest, RejectionsAreExportedPerReason) {
  EngineOptions options;
  options.maxBatch = 1;
  Engine engine(options);

  Request r;
  r.workload = "lstm";
  r.config = smallConfig();
  r.deadlineUs = -1;
  std::future<Response> future = engine.submit(std::move(r));
  EXPECT_EQ(rejectionReasonOf(future), RejectReason::Deadline);

  obs::MetricsRegistry registry;
  engine.exportMetrics(registry);
  const obs::MetricsRegistry::Snapshot snap = registry.snapshot();
  EXPECT_EQ(
      snap.counter("tssa_serve_rejected_total{reason=\"deadline\"}"), 1);
  EXPECT_EQ(
      snap.counter("tssa_serve_rejected_total{reason=\"queue_full\"}"), 0);
  EXPECT_EQ(snap.counter("tssa_serve_fallback_total"), 0);
}

// ---- (e) ProgramCache negative TTL + randomized schedules ------------------

TEST(ServeFaultsTest, NegativeCacheExpiryStartsAFreshGeneration) {
  ProgramCache cache(4, /*negativeTtlUs=*/50'000);
  workloads::Workload w = workloads::buildWorkload("lstm", smallConfig());
  ProgramKey key;
  key.workload = "lstm";
  key.signature = "sig";

  std::atomic<int> compiles{0};
  auto failingOnce = [&]() -> std::unique_ptr<runtime::Pipeline> {
    if (compiles.fetch_add(1) == 0) TSSA_THROW("scripted compile failure");
    return std::make_unique<runtime::Pipeline>(PipelineKind::Eager, *w.graph);
  };

  ProgramCache::Lookup first = cache.getOrCompile(key, failingOnce);
  EXPECT_NE(first.error, nullptr);
  EXPECT_FALSE(first.negative);  // its own attempt, not a cached failure

  ProgramCache::Lookup second = cache.getOrCompile(key, failingOnce);
  EXPECT_NE(second.error, nullptr);
  EXPECT_TRUE(second.negative);  // served from the negative cache
  EXPECT_EQ(compiles.load(), 1);  // within TTL: no retry

  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ProgramCache::Lookup third = cache.getOrCompile(key, failingOnce);
  EXPECT_EQ(third.error, nullptr);  // TTL expired: new generation, retried
  ASSERT_NE(third.program->pipeline, nullptr);
  EXPECT_EQ(compiles.load(), 2);

  const ProgramCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.compileFailures, 1u);
  EXPECT_EQ(stats.negativeHits, 1u);
  EXPECT_EQ(stats.compiles, 1u);  // only the successful one counts
}

TEST(ServeFaultsTest, FailingKeyStormDoesNotEvictHealthyPrograms) {
  // Regression: negative (cached-failure) entries used to count toward the
  // same LRU capacity as compiled programs, so a burst of failing keys
  // could flush every healthy program out of a full cache. Negative entries
  // are budgeted separately now.
  ProgramCache cache(2, /*negativeTtlUs=*/10'000'000);
  workloads::Workload w = workloads::buildWorkload("lstm", smallConfig());
  auto healthyCompile = [&]() -> std::unique_ptr<runtime::Pipeline> {
    return std::make_unique<runtime::Pipeline>(PipelineKind::Eager, *w.graph);
  };
  auto failingCompile = []() -> std::unique_ptr<runtime::Pipeline> {
    TSSA_THROW("scripted compile failure");
  };
  auto keyFor = [](const std::string& sig) {
    ProgramKey key;
    key.workload = "lstm";
    key.signature = sig;
    return key;
  };

  // Fill the cache to capacity with healthy programs.
  ASSERT_EQ(cache.getOrCompile(keyFor("h0"), healthyCompile).error, nullptr);
  ASSERT_EQ(cache.getOrCompile(keyFor("h1"), healthyCompile).error, nullptr);

  // A storm of distinct failing keys, wider than the whole capacity.
  for (int i = 0; i < 5; ++i) {
    ProgramCache::Lookup lookup = cache.getOrCompile(
        keyFor("f" + std::to_string(i)), failingCompile);
    EXPECT_NE(lookup.error, nullptr);
  }

  // Both healthy programs must still be served from cache: no new compile.
  const ProgramCache::Stats before = cache.stats();
  ProgramCache::Lookup h0 = cache.getOrCompile(keyFor("h0"), failingCompile);
  ProgramCache::Lookup h1 = cache.getOrCompile(keyFor("h1"), failingCompile);
  EXPECT_EQ(h0.error, nullptr);
  EXPECT_EQ(h1.error, nullptr);
  EXPECT_TRUE(h0.hit);
  EXPECT_TRUE(h1.hit);
  const ProgramCache::Stats after = cache.stats();
  EXPECT_EQ(after.hits, before.hits + 2);
  EXPECT_EQ(after.compiles, 2u);          // only the two healthy ones, once
  EXPECT_EQ(after.compileFailures, 5u);
  // Negative entries respect their own budget: the storm evicted only
  // older negatives (the last insert may leave one extra pending-turned-
  // negative entry until a later insert trims it).
  EXPECT_LE(after.negativeSize, 3u);
  EXPECT_GE(after.negativeSize, 2u);
  EXPECT_EQ(after.size - after.negativeSize, 2u);  // the healthy pair
}

TEST(ServeFaultsTest, CacheSingleFlightHoldsUnderRandomSchedules) {
  // Property: whatever the concurrent interleaving of lookups, evictions,
  // failures, and negative-TTL expiries, at most one compile per key is
  // ever in flight (single-flight per generation), and every lookup
  // resolves to either a program or an error. The schedule (who looks up
  // what, which compiles fail, how long they take) is generated from a
  // seed; the real thread interleaving varies per run.
  workloads::Workload w = workloads::buildWorkload("lstm", smallConfig());
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    Rng rng(seed);
    testing_support::ScheduleGenerator generator(rng);
    testing_support::ScheduleGenerator::Options scheduleOptions;
    scheduleOptions.threads = 4;
    scheduleOptions.keys = 3;
    scheduleOptions.steps = 48;
    scheduleOptions.failProbability = 0.3;
    scheduleOptions.maxCompileDelayUs = 300;
    const auto schedule = generator.generate(scheduleOptions);
    const auto lanes = testing_support::ScheduleGenerator::perThread(
        schedule, scheduleOptions.threads);

    // Capacity below the key count forces evictions; a short negative TTL
    // forces failed generations to expire mid-run.
    ProgramCache cache(2, /*negativeTtlUs=*/2'000);
    std::vector<std::atomic<int>> inFlight(scheduleOptions.keys);
    std::vector<std::atomic<int>> maxInFlight(scheduleOptions.keys);
    std::atomic<int> badLookups{0};

    std::vector<std::thread> workers;
    for (const auto& lane : lanes) {
      workers.emplace_back([&, lane] {
        for (const testing_support::CacheScheduleStep& step : lane) {
          ProgramKey key;
          key.workload = "lstm";
          key.signature = "k" + std::to_string(step.key);
          ProgramCache::Lookup lookup = cache.getOrCompile(key, [&] {
            const int now = ++inFlight[step.key];
            int seen = maxInFlight[step.key].load();
            while (seen < now &&
                   !maxInFlight[step.key].compare_exchange_weak(seen, now)) {
            }
            std::this_thread::sleep_for(
                std::chrono::microseconds(step.compileDelayUs));
            --inFlight[step.key];
            if (step.failCompile) TSSA_THROW("scripted compile failure");
            return std::make_unique<runtime::Pipeline>(PipelineKind::Eager,
                                                       *w.graph);
          });
          const bool hasProgram = lookup.program != nullptr &&
                                  lookup.program->pipeline != nullptr;
          const bool hasError = lookup.error != nullptr;
          if (hasProgram == hasError) ++badLookups;
        }
      });
    }
    for (auto& t : workers) t.join();

    EXPECT_EQ(badLookups.load(), 0) << "seed " << seed;
    for (std::size_t k = 0; k < scheduleOptions.keys; ++k)
      EXPECT_LE(maxInFlight[k].load(), 1)
          << "single-flight violated for key " << k << " at seed " << seed;
  }
}

}  // namespace
}  // namespace tssa
