// Decode serving subsystem: the paged KV cache, the iteration-level
// continuous-batching scheduler, and the differential contract that a
// session's output is bitwise-identical however it is scheduled —
// coalesced with strangers, padded to any bucket, at any thread count,
// with or without the texpr JIT.
#include <cmath>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/serve/decode.h"
#include "src/tensor/kv_cache.h"
#include "src/workloads/workload.h"

namespace tssa {
namespace {

using serve::DecodeOptions;
using serve::DecodeRequest;
using serve::DecodeResult;
using serve::DecodeScheduler;
using serve::RejectedError;
using serve::RejectReason;
using workloads::kDecodeDim;

// ---- KvCache ---------------------------------------------------------------

TEST(KvCacheTest, ReserveAppendGatherRelease) {
  KvCache cache({.pageTokens = 4, .tokenFloats = 8, .maxPages = 0});
  ASSERT_TRUE(cache.tryReserve("s1", 10));  // 3 pages worst case
  EXPECT_EQ(cache.stats().pagesReserved, 3);
  EXPECT_EQ(cache.stats().pagesInUse, 0);  // allocation happens on append

  std::vector<float> k(4), v(4);
  for (int t = 0; t < 10; ++t) {
    for (int i = 0; i < 4; ++i) {
      k[static_cast<std::size_t>(i)] = static_cast<float>(100 * t + i);
      v[static_cast<std::size_t>(i)] = static_cast<float>(-100 * t - i);
    }
    cache.append("s1", k, v);
  }
  EXPECT_EQ(cache.tokens("s1"), 10);
  EXPECT_EQ(cache.stats().pagesInUse, 3);  // ceil(10/4)
  EXPECT_EQ(cache.stats().appendedTokens, 10);

  // Gather into a bucket of 12: ten real rows, two zero rows.
  std::vector<float> kOut(12 * 4, -1.0f), vOut(12 * 4, -1.0f);
  cache.gather("s1", 12, kOut.data(), vOut.data());
  for (int t = 0; t < 10; ++t)
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(kOut[static_cast<std::size_t>(4 * t + i)],
                static_cast<float>(100 * t + i));
      EXPECT_EQ(vOut[static_cast<std::size_t>(4 * t + i)],
                static_cast<float>(-100 * t - i));
    }
  for (std::size_t i = 40; i < kOut.size(); ++i) {
    EXPECT_EQ(kOut[i], 0.0f);
    EXPECT_EQ(vOut[i], 0.0f);
  }

  cache.release("s1");
  const KvCache::Stats s = cache.stats();
  EXPECT_EQ(s.pagesInUse, 0);
  EXPECT_EQ(s.pagesReserved, 0);
  EXPECT_EQ(s.pageFrees, 3);
  EXPECT_EQ(s.activeSessions, 0);
  EXPECT_EQ(s.pagesHighWater, 3);
}

TEST(KvCacheTest, ReservationExhaustionIsCounted) {
  KvCache cache({.pageTokens = 4, .tokenFloats = 8, .maxPages = 4});
  ASSERT_TRUE(cache.tryReserve("a", 16));  // takes all 4 pages
  EXPECT_FALSE(cache.tryReserve("b", 1));  // no room left
  EXPECT_EQ(cache.stats().exhaustedReservations, 1);
  cache.release("a");
  EXPECT_TRUE(cache.tryReserve("b", 1));  // bulk free made room
}

TEST(KvCacheTest, PagesAreReusedAcrossSessions) {
  KvCache cache({.pageTokens = 2, .tokenFloats = 4, .maxPages = 0,
                 .slabPages = 8});
  std::vector<float> row(2, 1.0f);
  for (int round = 0; round < 5; ++round) {
    const std::string id = "s" + std::to_string(round);
    ASSERT_TRUE(cache.tryReserve(id, 16));  // 8 pages = one whole slab
    for (int t = 0; t < 16; ++t) cache.append(id, row, row);
    cache.release(id);
  }
  // Every round reused the first slab's pages: one slab, no growth.
  const KvCache::Stats s = cache.stats();
  EXPECT_EQ(s.slabBytes, 8 * 2 * 4 * static_cast<std::int64_t>(sizeof(float)));
  EXPECT_EQ(s.pagesHighWater, 8);
  EXPECT_EQ(s.pageAllocs, 40);
  EXPECT_EQ(s.pageFrees, 40);
}

TEST(KvCacheTest, MisuseThrows) {
  KvCache cache({.pageTokens = 2, .tokenFloats = 4});
  std::vector<float> row(2, 0.0f);
  EXPECT_THROW(cache.append("ghost", row, row), Error);
  EXPECT_THROW(cache.tokens("ghost"), Error);
  ASSERT_TRUE(cache.tryReserve("s", 2));
  EXPECT_THROW(cache.tryReserve("s", 2), Error);  // double reserve
  cache.append("s", row, row);
  cache.append("s", row, row);
  EXPECT_THROW(cache.append("s", row, row), Error);  // reservation overrun
  std::vector<float> pad(4);
  EXPECT_THROW(cache.gather("s", 1, pad.data(), pad.data()), Error);
  cache.release("s");
  cache.release("s");  // releasing twice is a no-op
}

// ---- Scheduler basics ------------------------------------------------------

DecodeOptions smallOptions() {
  DecodeOptions o;
  o.ctxBuckets = {4, 8, 16};
  o.kvPageTokens = 4;
  o.maxStepBatch = 4;
  o.maxActiveSessions = 4;
  return o;
}

TEST(DecodeSchedulerTest, SingleSessionCompletes) {
  DecodeScheduler sched(smallOptions());
  DecodeRequest req;
  req.prompt = DecodeScheduler::randomPrompt(3, 1);
  req.generate = 4;
  DecodeResult result = sched.submit(std::move(req)).get();
  EXPECT_EQ(result.steps, 3 + 4 - 1);
  ASSERT_TRUE(result.generated.defined());
  EXPECT_EQ(result.generated.sizes(), (Shape{4, kDecodeDim}));
  // tanh keeps every generated value in (-1, 1) and a real computation never
  // lands exactly on 0 for all coordinates.
  const float* g = result.generated.data<float>();
  bool anyNonZero = false;
  for (int i = 0; i < 4 * kDecodeDim; ++i) {
    EXPECT_LE(std::abs(g[i]), 1.0f);
    anyNonZero |= g[i] != 0.0f;
  }
  EXPECT_TRUE(anyNonZero);

  const serve::DecodeMetricsSnapshot snap = sched.metrics();
  EXPECT_EQ(snap.sessionsSubmitted, 1u);
  EXPECT_EQ(snap.sessionsCompleted, 1u);
  EXPECT_EQ(snap.joins, 1u);
  EXPECT_EQ(snap.leaves, 1u);
  EXPECT_EQ(snap.steps, 6u);
  EXPECT_EQ(snap.kv.pagesInUse, 0);
  EXPECT_EQ(snap.kv.activeSessions, 0);
}

TEST(DecodeSchedulerTest, ContinuousBatchingJoinsAndLeaves) {
  DecodeOptions options = smallOptions();
  options.maxActiveSessions = 2;
  DecodeScheduler sched(options);
  std::vector<std::future<DecodeResult>> futures;
  const std::int64_t gens[] = {2, 9, 4, 6};
  for (int i = 0; i < 4; ++i) {
    DecodeRequest req;
    req.prompt =
        DecodeScheduler::randomPrompt(2 + i % 2, static_cast<unsigned>(i));
    req.generate = gens[i];
    futures.push_back(sched.submit(std::move(req)));
  }
  std::int64_t batchedSteps = 0;
  for (auto& f : futures) batchedSteps += f.get().batchedSteps;
  // With two slots and mixed generation lengths some steps must have shared
  // their batch — that sharing is the entire point of iteration-level
  // scheduling.
  EXPECT_GT(batchedSteps, 0);

  const serve::DecodeMetricsSnapshot snap = sched.metrics();
  EXPECT_EQ(snap.sessionsCompleted, 4u);
  EXPECT_EQ(snap.joins, 4u);
  EXPECT_EQ(snap.leaves, 4u);
  EXPECT_GT(snap.meanOccupancy, 1.0);
  EXPECT_EQ(snap.kv.pagesInUse, 0);
  // KV pages never exceeded (active sessions × pages per max context).
  EXPECT_LE(snap.kv.pagesHighWater,
            static_cast<std::int64_t>(options.maxActiveSessions) *
                ((options.ctxBuckets.back() + options.kvPageTokens - 1) /
                 options.kvPageTokens));

  const serve::MetricsSnapshot engine = sched.engineMetrics();
  EXPECT_GT(engine.meanBatchSize, 1.0);  // steps actually coalesced
  EXPECT_EQ(engine.errors, 0u);
}

TEST(DecodeSchedulerTest, RunToCompletionBaselineStillCompletes) {
  DecodeOptions options = smallOptions();
  options.continuous = false;
  options.maxActiveSessions = 2;
  DecodeScheduler sched(options);
  std::vector<std::future<DecodeResult>> futures;
  for (int i = 0; i < 4; ++i) {
    DecodeRequest req;
    req.prompt = DecodeScheduler::randomPrompt(2, static_cast<unsigned>(i));
    req.generate = 3 + i;
    futures.push_back(sched.submit(std::move(req)));
  }
  for (auto& f : futures) f.get();
  const serve::DecodeMetricsSnapshot snap = sched.metrics();
  EXPECT_EQ(snap.sessionsCompleted, 4u);
  EXPECT_EQ(snap.kv.pagesInUse, 0);
}

TEST(DecodeSchedulerTest, OversizedSessionIsShedAtSubmit) {
  DecodeScheduler sched(smallOptions());
  DecodeRequest req;
  req.prompt = DecodeScheduler::randomPrompt(2, 7);
  req.generate = 100;  // needs 100+2-2 = 100 context tokens > bucket 16
  auto future = sched.submit(std::move(req));
  try {
    future.get();
    FAIL() << "expected RejectedError";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::KvExhausted);
  }
  EXPECT_EQ(sched.metrics().rejectedFor(RejectReason::KvExhausted), 1u);
}

// Bucket-boundary cases. A session's last step reads totalSteps-1 context
// tokens; admission allows exactly ctxBuckets.back() and sheds one past it.
TEST(DecodeSchedulerTest, ContextExactlyAtBucketEdgeMatchesSoloBitwise) {
  // promptLen 3 + generate 15 ⇒ 17 steps, final context 16 == largest
  // bucket: the edge itself is admitted and runs with zero padded rows.
  auto makeRequest = [] {
    DecodeRequest req;
    req.prompt = DecodeScheduler::randomPrompt(3, 606);
    req.generate = 15;
    return req;
  };

  Tensor solo;
  {
    DecodeScheduler sched(smallOptions());
    solo = sched.submit(makeRequest()).get().generated;
  }

  // Same session co-scheduled with a shorter one: crossing every bucket up
  // to and including the exact edge must stay bitwise identical.
  DecodeOptions options = smallOptions();
  options.maxActiveSessions = 4;
  DecodeScheduler sched(options);
  auto edge = sched.submit(makeRequest());
  DecodeRequest other;
  other.prompt = DecodeScheduler::randomPrompt(2, 707);
  other.generate = 5;
  auto companion = sched.submit(std::move(other));
  const Tensor batched = edge.get().generated;
  companion.get();

  ASSERT_EQ(batched.sizes(), solo.sizes());
  EXPECT_EQ(std::memcmp(batched.data<float>(), solo.data<float>(),
                        sizeof(float) *
                            static_cast<std::size_t>(batched.numel())),
            0);
  // One polymorphic step program served every bucket the two sessions
  // crossed (the old per-bucket specialization would have compiled one
  // program per context bucket).
  EXPECT_EQ(sched.engineMetrics().cacheCompiles, 1u);
}

TEST(DecodeSchedulerTest, ContextOnePastLargestBucketIsShed) {
  DecodeScheduler sched(smallOptions());
  DecodeRequest req;
  req.prompt = DecodeScheduler::randomPrompt(3, 808);
  req.generate = 16;  // 18 steps ⇒ final context 17 == bucket 16 + 1
  auto future = sched.submit(std::move(req));
  try {
    future.get();
    FAIL() << "expected RejectedError";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::KvExhausted);
  }
  EXPECT_EQ(sched.metrics().rejectedFor(RejectReason::KvExhausted), 1u);
  EXPECT_EQ(sched.metrics().sessionsCompleted, 0u);
}

TEST(DecodeSchedulerTest, KvExhaustionShedsInsteadOfWedging) {
  DecodeOptions options = smallOptions();
  options.maxActiveSessions = 8;
  options.kvMaxPages = 4;  // one 16-token session fills the cache alone
  DecodeScheduler sched(options);
  std::vector<std::future<DecodeResult>> futures;
  for (int i = 0; i < 3; ++i) {
    DecodeRequest req;
    req.prompt = DecodeScheduler::randomPrompt(8, static_cast<unsigned>(i));
    req.generate = 9;  // 16 steps -> 4 pages of 4 tokens
    futures.push_back(sched.submit(std::move(req)));
  }
  int completed = 0, shed = 0;
  for (auto& f : futures) {
    try {
      f.get();
      ++completed;
    } catch (const RejectedError& e) {
      EXPECT_EQ(e.reason(), RejectReason::KvExhausted);
      ++shed;
    }
  }
  // At least one session fits and finishes; whoever could not reserve pages
  // was shed with the typed reason rather than deadlocking the scheduler.
  EXPECT_GE(completed, 1);
  EXPECT_EQ(completed + shed, 3);
  const serve::DecodeMetricsSnapshot snap = sched.metrics();
  EXPECT_EQ(snap.rejectedFor(RejectReason::KvExhausted),
            static_cast<std::uint64_t>(shed));
  EXPECT_EQ(snap.kv.exhaustedReservations,
            static_cast<std::int64_t>(shed));
  EXPECT_EQ(snap.kv.pagesInUse, 0);
}

TEST(DecodeSchedulerTest, ExpiredSessionDeadlineIsRejected) {
  DecodeScheduler sched(smallOptions());
  DecodeRequest req;
  req.prompt = DecodeScheduler::randomPrompt(2, 3);
  req.generate = 4;
  req.deadlineUs = -1;  // expired before admission
  try {
    sched.submit(std::move(req)).get();
    FAIL() << "expected RejectedError";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::Deadline);
  }
  // deadlineUs = 0 must mean "no deadline" for sessions exactly as it does
  // for requests (the unified sentinel), not "expired at epoch".
  DecodeRequest ok;
  ok.prompt = DecodeScheduler::randomPrompt(2, 3);
  ok.generate = 4;
  ok.deadlineUs = 0;
  EXPECT_EQ(sched.submit(std::move(ok)).get().steps, 5);
}

TEST(DecodeSchedulerTest, ShutdownShedsQueuedSessions) {
  DecodeScheduler sched(smallOptions());
  sched.shutdown();
  DecodeRequest req;
  req.prompt = DecodeScheduler::randomPrompt(2, 3);
  req.generate = 2;
  try {
    sched.submit(std::move(req)).get();
    FAIL() << "expected RejectedError";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::ShuttingDown);
  }
}

TEST(DecodeSchedulerTest, ExportsCanonicalMetricNames) {
  DecodeScheduler sched(smallOptions());
  DecodeRequest req;
  req.prompt = DecodeScheduler::randomPrompt(2, 5);
  req.generate = 3;
  sched.submit(std::move(req)).get();
  obs::MetricsRegistry registry;
  sched.exportMetrics(registry);
  const obs::MetricsRegistry::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("tssa_decode_steps_total"), 4);
  EXPECT_EQ(snap.counter("tssa_decode_sessions_completed_total"), 1);
  EXPECT_EQ(snap.counter("tssa_decode_joins_total"), 1);
  EXPECT_EQ(snap.counter("tssa_decode_leaves_total"), 1);
  EXPECT_EQ(snap.counter("tssa_decode_rejected_total{reason=\"kv_exhausted\"}"),
            0);
  EXPECT_EQ(snap.gauge("tssa_decode_kv_pages_in_use"), 0.0);
  EXPECT_GT(snap.histogram("tssa_decode_step_occupancy").count, 0u);
}

// ---- Differential: batched == solo, bitwise --------------------------------

struct DiffParam {
  int threads;      // 1 or 0 (= hardware concurrency)
  bool texprJit;
};

class DecodeDifferentialTest : public ::testing::TestWithParam<DiffParam> {};

/// Sessions chosen so generation crosses every configured bucket (4, 8, 16):
/// the longest runs through all three specializations, the shortest stays in
/// the first, and the staggered lengths force joins/leaves mid-wave.
struct SessionSpec {
  std::int64_t promptLen;
  std::int64_t generate;
  std::uint64_t seed;
};

const std::vector<SessionSpec>& diffSessions() {
  static const std::vector<SessionSpec> specs = {
      {2, 3, 101},   // max context 3  -> bucket 4 only
      {3, 7, 202},   // max context 8  -> buckets 4, 8
      {5, 11, 303},  // max context 14 -> buckets 4, 8, 16
      {1, 9, 404},   // starts with an empty context
      {4, 13, 505},  // a second long one so the tail still batches
  };
  return specs;
}

DecodeOptions diffOptions(const DiffParam& param) {
  DecodeOptions o;
  o.ctxBuckets = {4, 8, 16};
  o.kvPageTokens = 4;
  o.maxStepBatch = 8;
  o.maxActiveSessions = 8;
  o.pipeline.threads = param.threads;
  o.pipeline.texprJit = param.texprJit;
  return o;
}

TEST_P(DecodeDifferentialTest, BatchedSessionMatchesSoloBitwise) {
  const DiffParam param = GetParam();

  // Batched: every session in flight together, joining and leaving freely.
  std::vector<Tensor> batched;
  std::int64_t batchedSteps = 0;
  {
    DecodeScheduler sched(diffOptions(param));
    std::vector<std::future<DecodeResult>> futures;
    for (const SessionSpec& spec : diffSessions()) {
      DecodeRequest req;
      req.prompt = DecodeScheduler::randomPrompt(spec.promptLen, spec.seed);
      req.generate = spec.generate;
      futures.push_back(sched.submit(std::move(req)));
    }
    for (auto& f : futures) {
      DecodeResult r = f.get();
      batchedSteps += r.batchedSteps;
      batched.push_back(std::move(r.generated));
    }
  }
  // The run must actually have exercised coalesced steps, or the test
  // compares solo against solo.
  EXPECT_GT(batchedSteps, 0);

  // Solo: each session alone in its own scheduler — batches of one, same
  // buckets, same weights (same seed).
  for (std::size_t i = 0; i < diffSessions().size(); ++i) {
    const SessionSpec& spec = diffSessions()[i];
    DecodeScheduler solo(diffOptions(param));
    DecodeRequest req;
    req.prompt = DecodeScheduler::randomPrompt(spec.promptLen, spec.seed);
    req.generate = spec.generate;
    const DecodeResult r = solo.submit(std::move(req)).get();
    ASSERT_EQ(r.generated.sizes(), batched[i].sizes());
    EXPECT_EQ(std::memcmp(r.generated.data<float>(),
                          batched[i].data<float>(),
                          sizeof(float) *
                              static_cast<std::size_t>(r.generated.numel())),
              0)
        << "session " << i << " diverged (threads=" << param.threads
        << " texprJit=" << param.texprJit << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndJit, DecodeDifferentialTest,
    ::testing::Values(DiffParam{1, false}, DiffParam{1, true},
                      DiffParam{0, false}, DiffParam{0, true}),
    [](const ::testing::TestParamInfo<DiffParam>& info) {
      return std::string("threads_") +
             (info.param.threads == 0 ? "hw" : "1") +
             (info.param.texprJit ? "_jit" : "_nojit");
    });

}  // namespace
}  // namespace tssa
