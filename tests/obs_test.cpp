// Tests for the src/obs observability layer (ISSUE 4 acceptance):
//   (a) concurrent span recording from ThreadPool workers is data-race free
//       (run under TSan in CI) and exports well-formed, properly nested
//       Chrome trace JSON,
//   (b) tracing disabled => zero spans recorded and bitwise-identical
//       workload outputs,
//   (c) a MetricsRegistry snapshot matches the Profiler / serve counters it
//       was exported from,
//   (d) the Prometheus text exposition round-trips a parse,
// plus unit coverage for the JSON escaper and nearest-rank percentiles.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/pipeline.h"
#include "src/runtime/thread_pool.h"
#include "src/serve/engine.h"
#include "src/workloads/workload.h"

namespace tssa {
namespace {

using obs::MetricsRegistry;
using obs::TraceEvent;
using obs::Tracer;
using obs::TraceSpan;

// ---- minimal JSON parser (validation + field extraction) -------------------
//
// Just enough of RFC 8259 to verify that everything the obs layer emits is
// well-formed and to pull out the fields the assertions need. Throws
// std::runtime_error on any malformed input.

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end())
      throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + what);
  }
  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skipWs();
    switch (peek()) {
      case '{': return objectValue();
      case '[': return arrayValue();
      case '"': return stringValue();
      case 't': case 'f': return boolValue();
      case 'n': return nullValue();
      default: return numberValue();
    }
  }

  JsonValue objectValue() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skipWs();
    if (peek() == '}') { ++pos_; return v; }
    for (;;) {
      skipWs();
      JsonValue key = stringValue();
      skipWs();
      expect(':');
      v.object[key.str] = value();
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JsonValue arrayValue() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skipWs();
    if (peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.array.push_back(value());
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  JsonValue stringValue() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return v;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') { v.str.push_back(c); continue; }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': v.str.push_back('"'); break;
        case '\\': v.str.push_back('\\'); break;
        case '/': v.str.push_back('/'); break;
        case 'b': v.str.push_back('\b'); break;
        case 'f': v.str.push_back('\f'); break;
        case 'n': v.str.push_back('\n'); break;
        case 'r': v.str.push_back('\r'); break;
        case 't': v.str.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u digit");
          }
          // The emitter only \u-escapes control characters (< 0x20), so a
          // single byte is enough here.
          v.str.push_back(static_cast<char>(code));
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue boolValue() {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    if (text_.substr(pos_, 4) == "true") { v.boolean = true; pos_ += 4; }
    else if (text_.substr(pos_, 5) == "false") { v.boolean = false; pos_ += 5; }
    else fail("bad literal");
    return v;
  }

  JsonValue nullValue() {
    if (text_.substr(pos_, 4) != "null") fail("bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue numberValue() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) { ++pos_; ++n; }
      return n;
    };
    if (digits() == 0) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits() == 0) fail("bad exponent");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }
};

// ---- shared fixture --------------------------------------------------------

/// Every test starts and ends with the global tracer disabled and empty, so
/// obs tests compose with the rest of the suite in any order.
class ObsTracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
};

workloads::WorkloadConfig tinyConfig() {
  workloads::WorkloadConfig c;
  c.batch = 2;
  c.seqLen = 6;
  return c;
}

/// Asserts that same-tid "X" events nest properly: sorted by start time
/// (parents first at ties), each event either contains the next or is
/// disjoint from everything still open. This is the structural contract
/// Chrome/Perfetto rely on to build flame graphs from complete events.
void expectProperNesting(const std::vector<JsonValue>& events) {
  std::map<double, std::vector<const JsonValue*>> byTid;
  for (const JsonValue& e : events)
    byTid[e.at("tid").number].push_back(&e);
  for (auto& [tid, evs] : byTid) {
    std::sort(evs.begin(), evs.end(),
              [](const JsonValue* a, const JsonValue* b) {
                const double sa = a->at("ts").number;
                const double sb = b->at("ts").number;
                if (sa != sb) return sa < sb;
                return a->at("dur").number > b->at("dur").number;
              });
    std::vector<const JsonValue*> open;
    for (const JsonValue* e : evs) {
      const double start = e->at("ts").number;
      const double end = start + e->at("dur").number;
      while (!open.empty() &&
             start >= open.back()->at("ts").number +
                          open.back()->at("dur").number)
        open.pop_back();
      if (!open.empty()) {
        const double pend = open.back()->at("ts").number +
                            open.back()->at("dur").number;
        EXPECT_LE(end, pend + 1e-6)
            << "span '" << e->at("name").str << "' on tid " << tid
            << " overlaps its parent '" << open.back()->at("name").str
            << "' without being contained";
      }
      open.push_back(e);
    }
  }
}

// ---- (a) concurrent recording, well-formed nested trace --------------------

TEST_F(ObsTracerTest, ConcurrentSpansFromPoolWorkersNestProperly) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();

  constexpr std::int64_t kItems = 96;
  constexpr int kWorkers = 8;
  runtime::ThreadPool::shared().parallelFor(
      kItems, kWorkers, [](std::int64_t begin, std::int64_t end, int chunk) {
        TraceSpan outer("test", "chunk");
        outer.arg("chunk", chunk);
        for (std::int64_t i = begin; i < end; ++i) {
          TraceSpan inner("test", "item");
          inner.arg("index", i);
          // A grandchild exercises depth > 2 on worker threads.
          TraceSpan leaf("test", "leaf");
        }
      });
  tracer.disable();

  const std::string json = tracer.chromeTraceJson();
  const JsonValue doc = JsonParser(json).parse();
  const std::vector<JsonValue>& events = doc.at("traceEvents").array;

  std::int64_t chunks = 0, items = 0, leaves = 0;
  for (const JsonValue& e : events) {
    ASSERT_EQ(e.at("ph").str, "X");
    EXPECT_GE(e.at("dur").number, 0.0);
    if (e.at("cat").str != "test") continue;
    if (e.at("name").str == "chunk") ++chunks;
    if (e.at("name").str == "item") ++items;
    if (e.at("name").str == "leaf") ++leaves;
  }
  EXPECT_GT(chunks, 0);
  EXPECT_LE(chunks, kWorkers);
  EXPECT_EQ(items, kItems);
  EXPECT_EQ(leaves, kItems);
  expectProperNesting(events);
}

TEST_F(ObsTracerTest, TracedThreadedWorkloadShowsAllLayers) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();

  workloads::Workload w = workloads::buildWorkload("lstm", tinyConfig());
  runtime::PipelineOptions opts;
  opts.threads = 4;
  runtime::Pipeline pipeline(runtime::PipelineKind::TensorSsa, *w.graph, opts);
  auto out = pipeline.run(w.inputs);
  tracer.disable();

  const JsonValue doc = JsonParser(tracer.chromeTraceJson()).parse();
  std::map<std::string, int> byCatName;
  for (const JsonValue& e : doc.at("traceEvents").array)
    ++byCatName[e.at("cat").str + "/" + e.at("name").str];

  // Compilation: every pass span once, inside one compile span, plus the
  // memory-plan span from Pipeline construction.
  EXPECT_EQ(byCatName["pipeline/compile"], 1);
  EXPECT_EQ(byCatName["pipeline/functionalize"], 1);
  EXPECT_EQ(byCatName["pipeline/fusion"], 1);
  EXPECT_EQ(byCatName["pipeline/parallelize"], 1);
  EXPECT_EQ(byCatName["pipeline/memory-plan"], 1);
  // Execution: one run span; fused regions execute inside it.
  EXPECT_EQ(byCatName["exec/Interpreter.run"], 1);
  EXPECT_GT(byCatName["exec/FusionGroup"], 0);
  expectProperNesting(doc.at("traceEvents").array);
}

TEST_F(ObsTracerTest, ChromeJsonSurvivesHostileArgStrings) {
  Tracer& tracer = Tracer::instance();
  tracer.enable();
  {
    TraceSpan span("test", "quotes\"and\\slashes");
    span.arg("key", std::string_view("line1\nline2\ttab\x01ctl\"q\""));
    span.arg("num", 0.5);
  }
  tracer.disable();
  const JsonValue doc = JsonParser(tracer.chromeTraceJson()).parse();
  const JsonValue& e = doc.at("traceEvents").array.at(0);
  EXPECT_EQ(e.at("name").str, "quotes\"and\\slashes");
  EXPECT_EQ(e.at("args").at("key").str, "line1\nline2\ttab\x01ctl\"q\"");
  EXPECT_EQ(e.at("args").at("num").number, 0.5);
}

// ---- (b) disabled tracing: zero spans, bitwise-identical outputs -----------

TEST_F(ObsTracerTest, DisabledTracerRecordsNothingAndPreservesOutputs) {
  workloads::Workload w = workloads::buildWorkload("attention", tinyConfig());

  // Reference run with tracing off.
  ASSERT_FALSE(Tracer::instance().enabled());
  runtime::Pipeline off(runtime::PipelineKind::TensorSsa, *w.graph,
                        runtime::PipelineOptions{});
  auto outOff = off.run(w.inputs);
  EXPECT_EQ(Tracer::instance().spanCount(), 0u);

  // Same graph, tracing on: spans appear, outputs do not change.
  Tracer::instance().enable();
  runtime::Pipeline on(runtime::PipelineKind::TensorSsa, *w.graph,
                       runtime::PipelineOptions{});
  auto outOn = on.run(w.inputs);
  Tracer::instance().disable();
  EXPECT_GT(Tracer::instance().spanCount(), 0u);
  EXPECT_TRUE(bench::outputsBitwiseEqual(outOff, outOn));
  EXPECT_EQ(off.profiler().kernelLaunches(), on.profiler().kernelLaunches());

  // And back off: no further spans get recorded.
  Tracer::instance().clear();
  auto outAgain = on.run(w.inputs);
  EXPECT_EQ(Tracer::instance().spanCount(), 0u);
  EXPECT_TRUE(bench::outputsBitwiseEqual(outOff, outAgain));
}

// ---- (c) registry snapshot matches its sources -----------------------------

TEST(ObsMetricsTest, ExportedProfilerCountersMatch) {
  workloads::Workload w = workloads::buildWorkload("lstm", tinyConfig());
  runtime::Pipeline pipeline(runtime::PipelineKind::TensorSsa, *w.graph,
                             runtime::PipelineOptions{});
  pipeline.run(w.inputs);
  const runtime::Profiler& prof = pipeline.profiler();

  MetricsRegistry registry;
  obs::exportProfiler(prof, registry);
  const MetricsRegistry::Snapshot snap = registry.snapshot();

  EXPECT_EQ(snap.counter("tssa_kernel_launches_total"),
            prof.kernelLaunches());
  EXPECT_EQ(snap.counter("tssa_bytes_moved_total"), prof.bytesMoved());
  EXPECT_EQ(snap.counter("tssa_flops_total"), prof.flops());
  EXPECT_EQ(snap.gauge("tssa_sim_time_us"), prof.simTimeUs());
  const auto mem = prof.memoryCounters();
  EXPECT_EQ(snap.counter("tssa_arena_allocs_total{kind=\"fresh\"}"),
            mem.freshAllocs);
  EXPECT_EQ(snap.counter("tssa_arena_allocs_total{kind=\"reused\"}"),
            mem.reusedAllocs);

  // The per-kernel invocation counters add up to the total launch count.
  std::int64_t perKernelSum = 0;
  for (const auto& [name, v] : snap.counters)
    if (name.rfind("tssa_kernel_invocations_total{", 0) == 0)
      perKernelSum += v;
  EXPECT_EQ(perKernelSum, prof.kernelLaunches());

  // Re-exporting after another run refreshes, not double-counts.
  pipeline.run(w.inputs);
  obs::exportProfiler(prof, registry);
  EXPECT_EQ(registry.snapshot().counter("tssa_kernel_launches_total"),
            prof.kernelLaunches());
}

TEST(ObsMetricsTest, ExportedServeMetricsMatchSnapshot) {
  serve::EngineOptions options;
  options.maxBatch = 1;  // deterministic: one request per batch
  serve::Engine engine(options);
  constexpr int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    serve::Request r;
    r.workload = "lstm";
    r.config = tinyConfig();
    engine.submit(std::move(r)).get();
  }
  engine.drain();

  const serve::MetricsSnapshot snap = engine.metrics();
  ASSERT_EQ(snap.requests, static_cast<std::uint64_t>(kRequests));

  MetricsRegistry registry;
  engine.exportMetrics(registry);
  const MetricsRegistry::Snapshot reg = registry.snapshot();

  EXPECT_EQ(reg.counter("tssa_serve_requests_total"),
            static_cast<std::int64_t>(snap.requests));
  EXPECT_EQ(reg.counter("tssa_serve_batches_total"),
            static_cast<std::int64_t>(snap.batches));
  EXPECT_EQ(reg.counter("tssa_serve_cache_hits_total"),
            static_cast<std::int64_t>(snap.cacheHits));
  EXPECT_EQ(reg.counter("tssa_serve_cache_misses_total"),
            static_cast<std::int64_t>(snap.cacheMisses));
  EXPECT_EQ(reg.counter("tssa_arena_allocs_total{kind=\"fresh\"}"),
            static_cast<std::int64_t>(snap.arenaFreshAllocs));
  EXPECT_EQ(reg.counter("tssa_arena_allocs_total{kind=\"reused\"}"),
            static_cast<std::int64_t>(snap.arenaReusedAllocs));

  const obs::HistogramStats lat =
      reg.histogram("tssa_serve_request_latency_us");
  EXPECT_EQ(lat.count, snap.requests);
  EXPECT_EQ(lat.p50, snap.total.p50Us);
  EXPECT_EQ(lat.p99, snap.total.p99Us);
  EXPECT_EQ(lat.max, snap.total.maxUs);

  // The snapshot JSON export parses and carries the same counter.
  const JsonValue doc = JsonParser(reg.toJson()).parse();
  EXPECT_EQ(doc.at("counters").at("tssa_serve_requests_total").number,
            static_cast<double>(kRequests));
  EXPECT_EQ(doc.at("histograms")
                .at("tssa_serve_request_latency_us")
                .at("count")
                .number,
            static_cast<double>(kRequests));
}

// ---- (d) Prometheus exposition round-trips ---------------------------------

/// Parses text exposition format 0.0.4 into {metric-with-labels: value},
/// checking structural invariants: every # TYPE line names a base that the
/// following samples share, every sample line is `name[{labels}] value`.
std::map<std::string, double> parsePrometheus(const std::string& text) {
  std::map<std::string, double> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << "bad comment: " << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << "bad sample line: " << line;
    const std::string key = line.substr(0, space);
    // Labels, when present, must be balanced and close at the key's end.
    const std::size_t brace = key.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(key.back(), '}') << "unterminated labels: " << line;
    }
    out[key] = std::stod(line.substr(space + 1));
  }
  return out;
}

TEST(ObsMetricsTest, PrometheusExpositionRoundTrips) {
  MetricsRegistry registry;
  registry.counterAdd("tssa_kernel_launches_total", 42);
  registry.counterSet("tssa_arena_allocs_total{kind=\"fresh\"}", 7);
  registry.counterSet("tssa_arena_allocs_total{kind=\"reused\"}", 35);
  registry.counterSet(
      "tssa_kernel_invocations_total{kernel=" +
          obs::promLabelValue("fused<add,mul>\"x\"") + "}",
      3);
  registry.gaugeSet("tssa_serve_throughput_rps", 123.5);
  for (int i = 1; i <= 100; ++i)
    registry.observe("tssa_serve_request_latency_us", i);

  const MetricsRegistry::Snapshot snap = registry.snapshot();
  const std::map<std::string, double> parsed =
      parsePrometheus(snap.toPrometheus());

  EXPECT_EQ(parsed.at("tssa_kernel_launches_total"), 42);
  EXPECT_EQ(parsed.at("tssa_arena_allocs_total{kind=\"fresh\"}"), 7);
  EXPECT_EQ(parsed.at("tssa_arena_allocs_total{kind=\"reused\"}"), 35);
  EXPECT_EQ(parsed.at("tssa_serve_throughput_rps"), 123.5);
  EXPECT_EQ(
      parsed.at(
          "tssa_serve_request_latency_us{quantile=\"0.5\"}"),
      50);
  EXPECT_EQ(
      parsed.at(
          "tssa_serve_request_latency_us{quantile=\"0.99\"}"),
      99);
  EXPECT_EQ(parsed.at("tssa_serve_request_latency_us_count"), 100);
  EXPECT_EQ(parsed.at("tssa_serve_request_latency_us_sum"), 5050);
  // The escaped kernel label survives (value keeps its quotes/backslashes).
  bool foundKernel = false;
  for (const auto& [key, v] : parsed)
    if (key.rfind("tssa_kernel_invocations_total{kernel=", 0) == 0) {
      foundKernel = true;
      EXPECT_EQ(v, 3);
    }
  EXPECT_TRUE(foundKernel);

  // One # TYPE line per base name, even with multiple labeled series.
  const std::string text = snap.toPrometheus();
  std::size_t typeCount = 0, pos = 0;
  while ((pos = text.find("# TYPE tssa_arena_allocs_total ", pos)) !=
         std::string::npos) {
    ++typeCount;
    ++pos;
  }
  EXPECT_EQ(typeCount, 1u);
}

TEST(ObsMetricsTest, TwoShardLabeledEnginesShareOneRegistry) {
  // The multi-shard collision fix (DESIGN.md §14): the canonical names are
  // engine-scoped, so two engines exporting unlabeled into one registry
  // would silently overwrite each other's counterSet values. Shard labels
  // keep the series disjoint end to end, through the Prometheus exposition.
  serve::EngineOptions options;
  options.maxBatch = 1;
  serve::Engine a(options);
  serve::Engine b(options);
  auto run = [](serve::Engine& engine, int n) {
    for (int i = 0; i < n; ++i) {
      serve::Request r;
      r.workload = "lstm";
      r.config = tinyConfig();
      engine.submit(std::move(r)).get();
    }
    engine.drain();
  };
  run(a, 3);
  run(b, 1);

  MetricsRegistry registry;
  a.exportMetrics(registry, "shard=\"0\"");
  b.exportMetrics(registry, "shard=\"1\"");
  const MetricsRegistry::Snapshot reg = registry.snapshot();

  EXPECT_EQ(reg.counter("tssa_serve_requests_total{shard=\"0\"}"), 3);
  EXPECT_EQ(reg.counter("tssa_serve_requests_total{shard=\"1\"}"), 1);
  // Already-labeled names get the shard label spliced in, not nested.
  EXPECT_EQ(reg.counter(
                "tssa_serve_rejected_total{reason=\"queue_full\",shard=\"0\"}"),
            0);
  EXPECT_EQ(reg.histogram("tssa_serve_request_latency_us{shard=\"0\"}").count,
            3u);
  EXPECT_EQ(reg.histogram("tssa_serve_request_latency_us{shard=\"1\"}").count,
            1u);
  // Nothing leaked onto the unlabeled canonical names.
  EXPECT_EQ(reg.counter("tssa_serve_requests_total"), 0);
  EXPECT_EQ(reg.histogram("tssa_serve_request_latency_us").count, 0u);

  // Round-trip through the text exposition: both series present with their
  // own values, sharing one # TYPE line per base name.
  const std::string text = reg.toPrometheus();
  const std::map<std::string, double> samples = parsePrometheus(text);
  EXPECT_EQ(samples.at("tssa_serve_requests_total{shard=\"0\"}"), 3.0);
  EXPECT_EQ(samples.at("tssa_serve_requests_total{shard=\"1\"}"), 1.0);
  std::size_t typeCount = 0, pos = 0;
  while ((pos = text.find("# TYPE tssa_serve_requests_total counter", pos)) !=
         std::string::npos) {
    ++typeCount;
    ++pos;
  }
  EXPECT_EQ(typeCount, 1u);
}

// ---- unit coverage ---------------------------------------------------------

TEST(ObsMetricsTest, WithLabelsSplicesIntoExistingLabelSets) {
  EXPECT_EQ(obs::withLabels("m", "shard=\"2\""), "m{shard=\"2\"}");
  EXPECT_EQ(obs::withLabels("m{k=\"v\"}", "shard=\"2\""),
            "m{k=\"v\",shard=\"2\"}");
  EXPECT_EQ(obs::withLabels("m", ""), "m");
}

TEST(ObsMetricsTest, NearestRankPercentiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  EXPECT_EQ(obs::percentileNearestRank(xs, 0.50), 50);
  EXPECT_EQ(obs::percentileNearestRank(xs, 0.95), 95);
  EXPECT_EQ(obs::percentileNearestRank(xs, 0.99), 99);  // not the max
  EXPECT_EQ(obs::percentileNearestRank({7.0}, 0.5), 7.0);
  EXPECT_EQ(obs::percentileNearestRank({100.0, 200.0}, 0.5), 100.0);
  EXPECT_EQ(obs::percentileNearestRank({}, 0.5), 0.0);
}

TEST(ObsMetricsTest, JsonQuoteEscapesEverythingParseable) {
  const std::string hostile = "a\"b\\c\nd\te\x01f\x1f";
  const JsonValue v = JsonParser(obs::jsonQuote(hostile)).parse();
  EXPECT_EQ(v.str, hostile);
  EXPECT_EQ(obs::jsonNumber(std::nan("")), "null");  // JSON has no NaN
  EXPECT_EQ(obs::jsonNumber(std::int64_t{-5}), "-5");
}

}  // namespace
}  // namespace tssa
