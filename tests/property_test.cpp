// Property-based tests: randomized imperative tensor programs are
// functionalized, optimized, and executed by every pipeline, and all of them
// must agree bit-for-bit (within float tolerance) with eager execution of
// the original program.
//
// The generator builds programs from the constructs the paper targets:
// chains of views (select/slice/transpose/unsqueeze), in-place mutations
// through them (copy_/add_/relu_/fill_/masked_fill_), pure compute, loops
// indexed by the induction variable, and branches — a superset of the
// Figure 1/2/4 shapes.
#include <gtest/gtest.h>

#include "src/core/dce.h"
#include "src/core/fusion.h"
#include "src/core/inplace_reuse.h"
#include "src/core/lower_inplace.h"
#include "src/core/parallelize.h"
#include "src/core/tensor_ssa.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/runtime/pipeline.h"
#include "src/tensor/random.h"
#include "tests/property_gen.h"

namespace tssa {
namespace {

using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::OpKind;
using ir::Type;
using ir::Value;
using runtime::Pipeline;
using runtime::PipelineKind;
using runtime::RtValue;

using testing_support::ProgramGenerator;

class RandomProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramTest, FunctionalizationPreservesSemantics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  Graph g;
  ProgramGenerator gen(g, rng);
  auto inputs = gen.generate(10);
  ir::verify(g);

  runtime::Interpreter interp;
  auto expected = interp.run(g, inputs);

  core::lowerInplaceOps(g);
  auto stats = core::convertToTensorSSA(g);
  ir::verify(g);
  auto actual = interp.run(g, inputs);

  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(allClose(expected[i].tensor(), actual[i].tensor(), 1e-5))
        << "seed " << GetParam() << " output " << i << "\n"
        << stats.toString() << "\n"
        << toString(g);
  }
}

TEST_P(RandomProgramTest, AllPipelinesAgreeOnRandomPrograms) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  Graph g;
  ProgramGenerator gen(g, rng);
  auto inputs = gen.generate(8);
  ir::verify(g);

  std::vector<RtValue> reference;
  for (PipelineKind kind : runtime::allPipelines()) {
    Pipeline p(kind, g);
    auto out = p.run(inputs);
    if (reference.empty()) {
      reference = out;
      continue;
    }
    ASSERT_EQ(reference.size(), out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_TRUE(allClose(reference[i].tensor(), out[i].tensor(), 1e-5))
          << "seed " << GetParam() << " pipeline " << pipelineName(kind)
          << " output " << i;
    }
  }
}

// The full optimization sequence (the TensorSSA pipeline's passes), applied
// to random loop nests with the IR verified after every pass, then executed
// both serially and on the threaded engine. Generated programs contain
// parallelizable single loops, multi-statement bodies, and nested loops the
// parallelizer must reject — so this covers both the threaded ParallelMap
// path and its serial fallback against one reference.
TEST_P(RandomProgramTest, ParallelizedExecutionMatchesSerial) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15485863 + 3);
  Graph g;
  ProgramGenerator gen(g, rng);
  auto inputs = gen.generate(10);
  ir::verify(g);

  runtime::Interpreter reference;
  auto expected = reference.run(g, inputs);

  using core::FusionPolicy;
  auto verified = [&](const char* pass, auto&& fn) {
    fn();
    ASSERT_NO_THROW(ir::verify(g)) << "seed " << GetParam()
                                   << ": IR broken after " << pass << ":\n"
                                   << toString(g);
  };
  verified("lowerInplaceOps", [&] { core::lowerInplaceOps(g); });
  verified("convertToTensorSSA", [&] { core::convertToTensorSSA(g); });
  verified("readonlyViewsToAccess", [&] {
    core::readonlyViewsToAccess(g, FusionPolicy::tensorssa());
  });
  verified("parallelizeLoops", [&] { core::parallelizeLoops(g); });
  verified("hoistConstants", [&] { core::hoistConstants(g); });
  verified("fuseKernels",
           [&] { core::fuseKernels(g, FusionPolicy::tensorssa()); });
  verified("markInplaceAssigns", [&] { core::markInplaceAssigns(g); });
  verified("eliminateDeadCode", [&] { core::eliminateDeadCode(g); });

  for (int threads : {1, 4}) {
    runtime::Interpreter interp(nullptr, /*useTexpr=*/true, threads);
    auto actual = interp.run(g, inputs);
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_TRUE(allClose(expected[i].tensor(), actual[i].tensor(), 1e-5))
          << "seed " << GetParam() << " output " << i << " threads=" << threads
          << "\n"
          << toString(g);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace tssa
