// Serving-tier integration of the autotuner (src/tune × src/serve):
//   (a) the tuned config is part of the program-cache key — two keys that
//       differ only in tuned knobs never collide (distinct toString, two
//       compiles), so a config change can never serve a stale program;
//   (b) cache-affinity survives tuning — a 4-shard Router with a tuner
//       installed still compiles each key exactly once tier-wide, and its
//       responses stay bitwise identical to an untuned single engine's;
//   (c) a tuner-measurement failure (injected kernel fault during the
//       measured shortlist) installs the default config: serving proceeds
//       on the default heuristics, not on an unmeasured candidate.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/serve/fault_injector.h"
#include "src/serve/program_cache.h"
#include "src/serve/router.h"
#include "src/tensor/random.h"
#include "src/tune/tuner.h"
#include "src/workloads/workload.h"

namespace tssa {
namespace {

using runtime::PipelineKind;
using runtime::PipelineOptions;
using runtime::RtValue;
using serve::Engine;
using serve::EngineOptions;
using serve::FaultInjector;
using serve::ProgramCache;
using serve::ProgramKey;
using serve::Request;
using serve::Response;
using serve::Router;
using serve::RouterOptions;
using tune::Autotuner;
using tune::TunedConfig;
using tune::TuneResult;
using tune::TunerOptions;
using workloads::WorkloadConfig;

WorkloadConfig smallConfig(std::int64_t batch = 2, std::int64_t seqLen = 8) {
  WorkloadConfig c;
  c.batch = batch;
  c.seqLen = seqLen;
  return c;
}

std::vector<RtValue> randomInputs(const std::string& workload,
                                  const WorkloadConfig& config,
                                  std::uint64_t dataSeed) {
  std::vector<RtValue> inputs = Engine::defaultInputs(workload, config);
  Rng rng(dataSeed);
  for (RtValue& v : inputs) {
    if (!v.isTensor() || v.tensor().dtype() != DType::Float32) continue;
    Tensor fresh = rng.normal(v.tensor().sizes(), 0.0, 0.5);
    v = RtValue(fresh);
  }
  return inputs;
}

TunerOptions analyticOnly(std::uint64_t seed = 11) {
  TunerOptions opts;
  opts.seed = seed;
  opts.searchSteps = 12;
  opts.measure = false;
  return opts;
}

// ---- (a) tuned knobs split the cache key -----------------------------------

TEST(ServeTuneTest, DistinctTunedConfigsNeverCollideInProgramCache) {
  const WorkloadConfig config = smallConfig();
  const workloads::Workload w = workloads::buildWorkload("lstm", config);

  ProgramKey base;
  base.workload = "lstm";
  base.kind = PipelineKind::TensorSsa;
  base.signature = "f32[2,8,128];f32[2,32];f32[2,32]";

  // Three configs that differ only in tuned pipeline knobs.
  ProgramKey cappedFusion = base;
  cappedFusion.options.fusionMaxOps = 4;
  ProgramKey maskedLoops = base;
  maskedLoops.options.parallelizeMask = 0x5;

  EXPECT_NE(base.toString(), cappedFusion.toString());
  EXPECT_NE(base.toString(), maskedLoops.toString());
  EXPECT_NE(cappedFusion.toString(), maskedLoops.toString());
  EXPECT_FALSE(base == cappedFusion);
  EXPECT_FALSE(cappedFusion == maskedLoops);

  ProgramCache cache(/*capacity=*/8, /*negativeTtlUs=*/0);
  int compiles = 0;
  auto compileFor = [&](const ProgramKey& key) {
    return cache.getOrCompile(key, [&] {
      ++compiles;
      return std::make_unique<runtime::Pipeline>(key.kind, *w.graph,
                                                 key.options);
    });
  };
  for (const ProgramKey* key : {&base, &cappedFusion, &maskedLoops}) {
    const ProgramCache::Lookup lookup = compileFor(*key);
    ASSERT_EQ(lookup.error, nullptr);
  }
  EXPECT_EQ(compiles, 3);  // one compile per distinct config, no collision
  // Re-looking-up each key hits its own entry — no cross-config eviction
  // or sharing.
  for (const ProgramKey* key : {&base, &cappedFusion, &maskedLoops})
    EXPECT_TRUE(compileFor(*key).hit);
  EXPECT_EQ(compiles, 3);
}

// ---- (b) tier-wide single compile + bitwise parity under tuning ------------

TEST(ServeTuneTest, RouterKeepsOneCompilePerKeyWithTuningEnabled) {
  const std::vector<std::string> names = {"lstm", "attention", "seq2seq"};
  Autotuner tuner(analyticOnly());
  const PipelineOptions base;
  for (const std::string& name : names)
    tuner.tune(name, smallConfig(), PipelineKind::TensorSsa, base);

  auto runAll = [&](Router& router) {
    for (const std::string& name : names) {
      for (std::int64_t batch : {1, 2}) {  // polymorphic: one key per workload
        Request r;
        r.workload = name;
        r.config = smallConfig(batch, 8);
        router.submit(r).get();
      }
    }
  };

  RouterOptions one;
  one.shards = 1;
  one.engine.tuner = &tuner;
  Router router1(one);
  runAll(router1);
  std::uint64_t compiles1 = 0;
  for (const auto& snap : router1.shardMetrics())
    compiles1 += snap.cacheCompiles;

  RouterOptions four;
  four.shards = 4;
  four.engine.tuner = &tuner;
  Router router4(four);
  runAll(router4);
  std::uint64_t compiles4 = 0;
  for (const auto& snap : router4.shardMetrics())
    compiles4 += snap.cacheCompiles;

  // Tuning must not break cache-affinity: the tuned config is resolved
  // before the key is rendered, so every shard agrees on the key string and
  // the tier still compiles each program exactly once.
  EXPECT_EQ(compiles4, compiles1);
  EXPECT_EQ(compiles1, names.size());
}

TEST(ServeTuneTest, TunedRouterIsBitwiseIdenticalToUntunedEngine) {
  const std::vector<std::string> names = {"lstm", "attention", "nasrnn"};
  Autotuner tuner(analyticOnly(3));
  const PipelineOptions base;
  for (const std::string& name : names)
    tuner.tune(name, smallConfig(), PipelineKind::TensorSsa, base);

  EngineOptions plain;
  Engine untuned(plain);
  RouterOptions tunedOpts;
  tunedOpts.shards = 4;
  tunedOpts.engine.tuner = &tuner;
  Router tuned(tunedOpts);

  std::uint64_t dataSeed = 91;
  for (const std::string& name : names) {
    Request r;
    r.workload = name;
    r.config = smallConfig();
    r.inputs = randomInputs(name, r.config, dataSeed++);
    const Response a = untuned.submit(r).get();
    const Response b = tuned.submit(r).get();
    EXPECT_TRUE(bench::outputsBitwiseEqual(a.outputs, b.outputs)) << name;
  }
}

// ---- (c) measurement failure ⇒ serve on defaults ---------------------------

TEST(ServeTuneTest, MeasurementFaultFallsBackToDefaultServing) {
  FaultInjector injector;
  // First measurement run, first kernel launch: the shortlist's very first
  // wall-clock rep dies, exactly like a flaky device would.
  injector.throwOnKernelLaunch(1, 1);

  TunerOptions opts;
  opts.seed = 2;
  opts.searchSteps = 8;
  opts.measure = true;
  opts.measureReps = 1;
  opts.faultInjector = &injector;
  Autotuner tuner(opts);
  const PipelineOptions base;
  const TuneResult r =
      tuner.tune("attention", smallConfig(), PipelineKind::TensorSsa, base);

  EXPECT_TRUE(r.measurementFailed);
  EXPECT_GE(injector.faultsInjected(), 1u);
  // The installed config is the default heuristics, not the analytic
  // winner: a config that was only ever priced on paper must not serve.
  EXPECT_EQ(r.config, TunedConfig::defaults(base));
  EXPECT_DOUBLE_EQ(r.tunedNsPerIter, 0.0);

  // Serving with this tuner resolves the untouched base options: keys,
  // compiles and batching all run the default path.
  const PipelineOptions resolved =
      tuner.pipelineFor("attention", PipelineKind::TensorSsa, base);
  EXPECT_EQ(runtime::hashValue(resolved), runtime::hashValue(base));

  EngineOptions engineOpts;
  engineOpts.tuner = &tuner;
  Engine engine(engineOpts);
  EngineOptions plain;
  Engine untuned(plain);
  Request req;
  req.workload = "attention";
  req.config = smallConfig();
  req.inputs = randomInputs("attention", req.config, 17);
  const Response a = engine.submit(req).get();
  const Response b = untuned.submit(req).get();
  EXPECT_TRUE(bench::outputsBitwiseEqual(a.outputs, b.outputs));
  engine.shutdown();
  untuned.shutdown();
}

}  // namespace
}  // namespace tssa
