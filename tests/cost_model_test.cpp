// Tests for the analytic cost model (src/analysis/cost.h, ROADMAP item 5).
//
// Three layers of evidence that the model is honest:
//   (a) hand-computed flops/bytes for the per-op formulas (matmul =
//       2·M·N·K, softmax = 5·numel, reductions read the input once, ...),
//   (b) a fusion-conservation property over random imperative programs:
//       fusing a graph never changes its flops — the fused group's cost is
//       the sum of its pre-fusion member costs — while launches and bytes
//       only ever shrink,
//   (c) differential equality against the real Profiler: for every paper
//       workload × pipeline, and for random fused element regions in both
//       texpr modes, estimateCost() on the compiled graph reports exactly
//       the launches/bytes/flops/per-kernel histogram (and the same
//       simulated latency) that executing the program observes.
// Plus the symbolic path: bindSymbolic() over a workload's pattern must
// price a polymorphic program identically to concrete input metadata.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/cost.h"
#include "src/core/fusion.h"
#include "src/ir/builder.h"
#include "src/runtime/pipeline.h"
#include "src/tensor/random.h"
#include "src/workloads/workload.h"
#include "tests/property_gen.h"

namespace tssa {
namespace {

using analysis::CostOptions;
using analysis::CostReport;
using analysis::CostValue;
using analysis::costInputs;
using analysis::estimateCost;
using ir::Graph;
using ir::IRBuilder;
using ir::Value;
using runtime::PipelineKind;
using runtime::PipelineOptions;
using runtime::RtValue;
using testing_support::FusedRegionGenerator;
using testing_support::ProgramGenerator;

int fuzzReps() {
  const char* reps = std::getenv("TSSA_FUZZ_REPS");
  if (reps == nullptr) return 60;
  const int n = std::atoi(reps);
  return n > 0 ? std::min(n, 60) : 60;
}

CostValue f32(Shape sizes) {
  return CostValue::tensor(std::move(sizes), DType::Float32);
}

// ---- (a) hand-computed per-op formulas -------------------------------------

TEST(CostModelTest, MatmulIsTwoMNK) {
  Graph g;
  IRBuilder b(g);
  Value* a = g.addInput(ir::Type::tensor(DType::Float32), "a");
  Value* w = g.addInput(ir::Type::tensor(DType::Float32), "w");
  g.addOutput(b.matmul(a, w));
  const std::vector<CostValue> in = {f32({3, 4}), f32({4, 5})};
  const CostReport r = estimateCost(g, in);
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r.launches, 1);
  EXPECT_EQ(r.flops, 2 * 3 * 4 * 5);
  EXPECT_EQ(r.bytes, (3 * 4 + 4 * 5 + 3 * 5) * 4);
  const CostOptions opts;
  EXPECT_DOUBLE_EQ(r.gpuUs, opts.device.kernelTimeUs(r.bytes, r.flops));
}

TEST(CostModelTest, BmmIsBatchedMatmul) {
  Graph g;
  IRBuilder b(g);
  Value* a = g.addInput(ir::Type::tensor(DType::Float32), "a");
  Value* w = g.addInput(ir::Type::tensor(DType::Float32), "w");
  g.addOutput(b.bmm(a, w));
  const std::vector<CostValue> in = {f32({2, 3, 4}), f32({2, 4, 5})};
  const CostReport r = estimateCost(g, in);
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r.launches, 1);
  EXPECT_EQ(r.flops, 2 * 2 * 3 * 4 * 5);
  EXPECT_EQ(r.bytes, (2 * 3 * 4 + 2 * 4 * 5 + 2 * 3 * 5) * 4);
}

TEST(CostModelTest, BroadcastAddMovesBothInputsAndOutput) {
  Graph g;
  IRBuilder b(g);
  Value* a = g.addInput(ir::Type::tensor(DType::Float32), "a");
  Value* c = g.addInput(ir::Type::tensor(DType::Float32), "c");
  g.addOutput(b.add(a, c));
  const CostReport r =
      estimateCost(g, std::vector<CostValue>{f32({4, 8}), f32({8})});
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r.launches, 1);
  EXPECT_EQ(r.flops, 4 * 8);                     // one op per output element
  EXPECT_EQ(r.bytes, (32 + 8 + 32) * 4);         // a + b + out
}

TEST(CostModelTest, SoftmaxIsFiveNumel) {
  Graph g;
  IRBuilder b(g);
  Value* a = g.addInput(ir::Type::tensor(DType::Float32), "a");
  g.addOutput(b.softmax(a, /*dim=*/1));
  const CostReport r = estimateCost(g, std::vector<CostValue>{f32({2, 10})});
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r.launches, 1);
  EXPECT_EQ(r.flops, 5 * 20);
  EXPECT_EQ(r.bytes, (2 * 20 + 20) * 4);  // 2·a + out
}

TEST(CostModelTest, FullReductionReadsInputOnce) {
  Graph g;
  IRBuilder b(g);
  Value* a = g.addInput(ir::Type::tensor(DType::Float32), "a");
  g.addOutput(b.sum(a));
  const CostReport r = estimateCost(g, std::vector<CostValue>{f32({6, 7})});
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r.launches, 1);
  EXPECT_EQ(r.flops, 42);
  EXPECT_EQ(r.bytes, 42 * 4);  // the scalar output is free
}

TEST(CostModelTest, CatMovesOutputTwiceWithZeroFlops) {
  Graph g;
  IRBuilder b(g);
  Value* a = g.addInput(ir::Type::tensor(DType::Float32), "a");
  Value* c = g.addInput(ir::Type::tensor(DType::Float32), "c");
  g.addOutput(b.cat({a, c}, /*dim=*/0));
  const CostReport r =
      estimateCost(g, std::vector<CostValue>{f32({2, 3}), f32({4, 3})});
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r.launches, 1);
  EXPECT_EQ(r.flops, 0);
  EXPECT_EQ(r.bytes, 2 * (6 * 3) * 4);
}

TEST(CostModelTest, MaskedFillCountsMaskBytes) {
  Graph g;
  IRBuilder b(g);
  Value* a = g.addInput(ir::Type::tensor(DType::Float32), "a");
  Value* m = g.addInput(ir::Type::tensor(DType::Bool), "m");
  g.addOutput(b.maskedFill(a, m, b.constFloat(0.0)));
  const std::vector<CostValue> in = {
      f32({2, 3}), CostValue::tensor({2, 3}, DType::Bool)};
  const CostReport r = estimateCost(g, in);
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r.launches, 1);
  EXPECT_EQ(r.flops, 6);
  EXPECT_EQ(r.bytes, 24 + 6 + 24);  // f32 a + bool mask + f32 out
}

TEST(CostModelTest, TopkChargesFourPassesAndSyncs) {
  Graph g;
  IRBuilder b(g);
  Value* a = g.addInput(ir::Type::tensor(DType::Float32), "a");
  ir::Node* tk = b.topk(a, /*k=*/3);
  g.addOutput(tk->output(0));
  g.addOutput(tk->output(1));
  const CostReport r = estimateCost(g, std::vector<CostValue>{f32({8})});
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r.launches, 4);
  EXPECT_EQ(r.flops, 4 * 8);
  EXPECT_EQ(r.bytes, 4 * (8 + 3) * 4);
}

TEST(CostModelTest, ViewsAreFree) {
  Graph g;
  IRBuilder b(g);
  Value* a = g.addInput(ir::Type::tensor(DType::Float32), "a");
  g.addOutput(b.transpose(b.reshape(a, {4, 6}), 0, 1));
  const CostReport r = estimateCost(g, std::vector<CostValue>{f32({2, 12})});
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r.launches, 0);
  EXPECT_EQ(r.bytes, 0);
  EXPECT_EQ(r.flops, 0);
  EXPECT_GT(r.hostUs, 0);  // dispatch is still charged
  EXPECT_DOUBLE_EQ(r.simUs, r.hostUs);
}

TEST(CostModelTest, DataDependentControlFlowCountsUnknownOps) {
  Graph g;
  IRBuilder b(g);
  Value* a = g.addInput(ir::Type::tensor(DType::Float32), "a");
  // A scalar condition fed from tensor data: the metadata walk cannot
  // decide the branch, so the If is an unknown op and the report is a
  // lower bound.
  Value* cond = g.addInput(ir::Type::boolean(), "cond");
  ir::Node* ifNode = b.makeIf(cond, 1);
  {
    IRBuilder arm(g);
    arm.setInsertionPointToEnd(ifNode->block(0));
    ifNode->block(0)->addReturn(arm.relu(a));
    arm.setInsertionPointToEnd(ifNode->block(1));
    ifNode->block(1)->addReturn(arm.neg(a));
  }
  g.addOutput(ifNode->output(0));
  const std::vector<CostValue> in = {f32({4}), CostValue::unknown()};
  const CostReport r = estimateCost(g, in);
  EXPECT_FALSE(r.exact());
  EXPECT_EQ(r.unknownOps, 1);
}

// ---- (b) fusion conserves cost ---------------------------------------------

TEST(CostModelPropertyTest, FusionConservesFlopsAndNeverAddsTraffic) {
  const int reps = fuzzReps();
  CostOptions opts;
  opts.useTexpr = false;  // compare interpreted-body pricing only
  for (int seed = 1; seed <= reps; ++seed) {
    Graph g;
    Rng rng(static_cast<std::uint64_t>(seed) * 7919);
    ProgramGenerator gen(g, rng);
    const std::vector<RtValue> inputs = gen.generate(10);
    const std::vector<CostValue> in = costInputs(inputs);
    const CostReport pre = estimateCost(g, in, opts);
    ASSERT_TRUE(pre.exact()) << "seed " << seed;

    auto fused = ir::cloneGraph(g);
    core::fuseKernels(*fused, core::FusionPolicy::nnc());
    const CostReport post = estimateCost(*fused, in, opts);
    ASSERT_TRUE(post.exact()) << "seed " << seed;

    // The fused program's cost is the sum of its pre-fusion node costs:
    // flops are conserved exactly; launches and external traffic can only
    // shrink (intermediates stay inside the group).
    EXPECT_EQ(post.flops, pre.flops) << "seed " << seed;
    EXPECT_LE(post.launches, pre.launches) << "seed " << seed;
    EXPECT_LE(post.bytes, pre.bytes) << "seed " << seed;
  }
}

// ---- (c) differential equality against the Profiler ------------------------

void expectMatchesProfiler(const Graph& compiled,
                           const runtime::Profiler& profiler,
                           const CostReport& r, const std::string& label) {
  EXPECT_TRUE(r.exact()) << label;
  EXPECT_EQ(r.launches, profiler.kernelLaunches()) << label;
  EXPECT_EQ(r.bytes, profiler.bytesMoved()) << label;
  EXPECT_EQ(r.flops, profiler.flops()) << label;
  EXPECT_EQ(r.perKernel, profiler.kernelHistogram()) << label;
  const double tol = 1e-6 * std::max(1.0, profiler.simTimeUs());
  EXPECT_NEAR(r.gpuUs, profiler.gpuTimeUs(), tol) << label;
  EXPECT_NEAR(r.hostUs, profiler.hostTimeUs(), tol) << label;
  EXPECT_NEAR(r.simUs, profiler.simTimeUs(), tol) << label;
  (void)compiled;
}

TEST(CostModelDifferentialTest, MatchesProfilerOnAllWorkloadsAndPipelines) {
  workloads::WorkloadConfig config;
  config.batch = 2;
  config.seqLen = 16;
  for (const std::string& name : workloads::workloadNames()) {
    const workloads::Workload w = workloads::buildWorkload(name, config);
    for (PipelineKind kind : runtime::allPipelines()) {
      PipelineOptions po;
      po.threads = 1;
      runtime::Pipeline pipeline(kind, *w.graph, po);
      pipeline.run(w.inputs);

      auto compiled = ir::cloneGraph(*w.graph);
      runtime::compileGraph(kind, *compiled, po);
      CostOptions opts;
      opts.device = po.device;
      opts.host = runtime::hostSpecFor(kind);
      opts.useTexpr = po.useTexpr;
      const CostReport r = estimateCost(*compiled, costInputs(w.inputs), opts);
      expectMatchesProfiler(
          *compiled, pipeline.profiler(), r,
          name + "/" + std::string(runtime::pipelineName(kind)));
    }
  }
}

TEST(CostModelDifferentialTest, MatchesProfilerWithTexprOff) {
  workloads::WorkloadConfig config;
  config.batch = 2;
  config.seqLen = 16;
  for (const std::string& name : workloads::workloadNames()) {
    const workloads::Workload w = workloads::buildWorkload(name, config);
    PipelineOptions po;
    po.threads = 1;
    po.useTexpr = false;
    runtime::Pipeline pipeline(PipelineKind::TensorSsa, *w.graph, po);
    pipeline.run(w.inputs);

    auto compiled = ir::cloneGraph(*w.graph);
    runtime::compileGraph(PipelineKind::TensorSsa, *compiled, po);
    CostOptions opts;
    opts.host = runtime::hostSpecFor(PipelineKind::TensorSsa);
    opts.useTexpr = false;
    const CostReport r = estimateCost(*compiled, costInputs(w.inputs), opts);
    expectMatchesProfiler(*compiled, pipeline.profiler(), r,
                          name + "/texpr-off");
  }
}

TEST(CostModelDifferentialTest, MatchesProfilerOnRandomFusedRegions) {
  const int reps = fuzzReps();
  for (int seed = 1; seed <= reps; ++seed) {
    for (const bool useTexpr : {false, true}) {
      Graph g;
      Rng structRng(static_cast<std::uint64_t>(seed) * 31 + 1);
      Rng dataRng(static_cast<std::uint64_t>(seed) * 131 + 7);
      FusedRegionGenerator gen(g, structRng, dataRng);
      const FusedRegionGenerator::Built built = gen.build();

      // Eager applies no passes, so the pipeline executes this exact graph.
      PipelineOptions po;
      po.threads = 1;
      po.useTexpr = useTexpr;
      po.memoryPlan = false;
      runtime::Pipeline pipeline(PipelineKind::Eager, g, po);
      pipeline.run(built.inputs);

      CostOptions opts;
      opts.host = runtime::hostSpecFor(PipelineKind::Eager);
      opts.useTexpr = useTexpr;
      const CostReport r = estimateCost(g, costInputs(built.inputs), opts);
      expectMatchesProfiler(g, pipeline.profiler(), r,
                            "seed " + std::to_string(seed) +
                                (useTexpr ? "/texpr" : "/interp"));
    }
  }
}

// ---- symbolic dims ---------------------------------------------------------

TEST(CostModelSymbolicTest, BindSymbolicPricesPolymorphicProgramExactly) {
  workloads::WorkloadConfig config;
  config.batch = 3;
  config.seqLen = 12;
  config.symbolicDims = true;
  for (const std::string name : {"lstm", "attention", "seq2seq"}) {
    const workloads::Workload w = workloads::buildWorkload(name, config);
    const workloads::SymbolicPattern& pattern =
        workloads::workloadSymbolicPattern(name);
    const std::vector<CostValue> concrete = costInputs(w.inputs);
    const std::vector<CostValue> symbolic = analysis::bindSymbolic(
        pattern.inputs, {{"B", config.batch}, {"T", config.seqLen}});
    const CostReport a = estimateCost(*w.graph, concrete);
    const CostReport b = estimateCost(*w.graph, symbolic);
    EXPECT_TRUE(a.exact()) << name;
    EXPECT_EQ(a.launches, b.launches) << name;
    EXPECT_EQ(a.bytes, b.bytes) << name;
    EXPECT_EQ(a.flops, b.flops) << name;
    EXPECT_EQ(a.perKernel, b.perKernel) << name;
    EXPECT_DOUBLE_EQ(a.simUs, b.simUs) << name;
    // One polymorphic program, cost as a function of the bound extents:
    // doubling the sequence length must strictly increase the modelled cost.
    const CostReport longer = estimateCost(
        *w.graph, analysis::bindSymbolic(
                      pattern.inputs,
                      {{"B", config.batch}, {"T", 2 * config.seqLen}}));
    EXPECT_GT(longer.flops, b.flops) << name;
  }
}

}  // namespace
}  // namespace tssa
