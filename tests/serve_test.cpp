// Tests for the src/serve inference serving engine (ISSUE 2 acceptance):
//   (a) program cache: hit on the second same-shape request with zero
//       recompiles; LRU eviction at capacity,
//   (b) a micro-batched run of K same-shape requests is bitwise identical
//       to the K individual runs,
//   (c) many concurrent sessions come back clean (run under TSan in CI),
// plus unit coverage for the cache, batcher grouping, and metrics math.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/serve/engine.h"
#include "src/serve/fault_injector.h"
#include "src/tensor/random.h"

namespace tssa {
namespace {

using runtime::PipelineKind;
using runtime::PipelineOptions;
using runtime::RtValue;
using serve::Engine;
using serve::EngineOptions;
using serve::ProgramCache;
using serve::ProgramKey;
using serve::Request;
using serve::Response;
using serve::Session;
using workloads::WorkloadConfig;

WorkloadConfig smallConfig(std::int64_t batch = 2, std::int64_t seqLen = 8) {
  WorkloadConfig c;
  c.batch = batch;
  c.seqLen = seqLen;
  return c;
}

/// Fresh random inputs shaped like the registry's example tuple, so distinct
/// requests carry distinct payloads (the interesting case for batching).
std::vector<RtValue> randomInputs(const std::string& workload,
                                  const WorkloadConfig& config,
                                  std::uint64_t dataSeed) {
  std::vector<RtValue> inputs = Engine::defaultInputs(workload, config);
  Rng rng(dataSeed);
  for (RtValue& v : inputs) {
    if (!v.isTensor() || v.tensor().dtype() != DType::Float32) continue;
    Tensor fresh = rng.normal(v.tensor().sizes(), 0.0, 0.5);
    v = RtValue(fresh);
  }
  return inputs;
}

EngineOptions unbatchedOptions(std::size_t cacheCapacity = 32) {
  EngineOptions o;
  o.maxBatch = 1;  // disable coalescing
  o.cacheCapacity = cacheCapacity;
  return o;
}

// ---- (a) program cache behaviour ------------------------------------------

TEST(ServeCacheTest, SecondSameShapeRequestHitsWithZeroRecompiles) {
  Engine engine(unbatchedOptions());
  Request r;
  r.workload = "lstm";
  r.config = smallConfig();

  Response first = engine.submit(r).get();
  EXPECT_FALSE(first.cacheHit);
  EXPECT_EQ(engine.cacheStats().compiles, 1u);

  Response second = engine.submit(r).get();
  EXPECT_TRUE(second.cacheHit);
  EXPECT_EQ(engine.cacheStats().compiles, 1u);  // zero recompiles
  EXPECT_EQ(engine.cacheStats().hits, 1u);
  EXPECT_EQ(engine.cacheStats().misses, 1u);
}

TEST(ServeCacheTest, DistinctShapesMissSeparately) {
  // Exercises the exact-shape specialization mode: with symbolic shapes
  // (the default) both shapes share one polymorphic program
  // (tests/serve_symbolic_test.cpp covers that).
  EngineOptions options = unbatchedOptions();
  options.symbolicShapes = false;
  Engine engine(options);
  Request a;
  a.workload = "lstm";
  a.config = smallConfig(2, 8);
  Request b;
  b.workload = "lstm";
  b.config = smallConfig(4, 8);  // different shape signature

  EXPECT_FALSE(engine.submit(a).get().cacheHit);
  EXPECT_FALSE(engine.submit(b).get().cacheHit);
  EXPECT_EQ(engine.cacheStats().compiles, 2u);
  EXPECT_TRUE(engine.submit(a).get().cacheHit);
  EXPECT_TRUE(engine.submit(b).get().cacheHit);
}

TEST(ServeCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  // LRU mechanics need distinct keys; pin exact-shape mode so each batch
  // size is its own program.
  EngineOptions options = unbatchedOptions(/*cacheCapacity=*/2);
  options.symbolicShapes = false;
  Engine engine(options);
  auto req = [](std::int64_t batch) {
    Request r;
    r.workload = "nasrnn";
    r.config = smallConfig(batch, 6);
    return r;
  };
  engine.submit(req(1)).get();
  engine.submit(req(2)).get();
  engine.submit(req(3)).get();  // capacity 2 → evicts the batch=1 program
  EXPECT_EQ(engine.cacheStats().evictions, 1u);
  EXPECT_EQ(engine.cacheStats().size, 2u);

  Response again = engine.submit(req(1)).get();  // recompile after eviction
  EXPECT_FALSE(again.cacheHit);
  EXPECT_EQ(engine.cacheStats().compiles, 4u);
}

TEST(ServeCacheTest, SingleFlightCompilesOncePerKeyUnderConcurrency) {
  ProgramCache cache(8);
  workloads::Workload w = workloads::buildWorkload("lstm", smallConfig());
  ProgramKey key;
  key.workload = "lstm";
  key.signature = "sig";
  std::atomic<int> compiles{0};
  std::vector<std::thread> threads;
  std::atomic<int> hits{0};
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      ProgramCache::Lookup got = cache.getOrCompile(key, [&] {
        ++compiles;
        return std::make_unique<runtime::Pipeline>(PipelineKind::TensorSsa,
                                                   *w.graph);
      });
      ASSERT_NE(got.program->pipeline, nullptr);
      hits += got.hit ? 1 : 0;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(compiles.load(), 1);
  EXPECT_EQ(hits.load(), 7);
}

TEST(ServeCacheTest, EvictionSkipsInFlightCompiles) {
  // Capacity pressure while a compile is in flight must not evict the
  // compiling entry: a re-request of that key would miss and start a
  // duplicate compile of the identical program, breaking single-flight.
  ProgramCache cache(/*capacity=*/1);
  workloads::Workload w = workloads::buildWorkload("lstm", smallConfig());
  auto makePipeline = [&] {
    return std::make_unique<runtime::Pipeline>(PipelineKind::TensorSsa,
                                               *w.graph);
  };
  ProgramKey a;
  a.workload = "lstm";
  a.signature = "a";
  ProgramKey b;
  b.workload = "lstm";
  b.signature = "b";

  std::promise<void> compileStarted;
  std::promise<void> release;
  std::future<void> releaseFuture = release.get_future();
  std::atomic<int> compilesOfA{0};
  std::thread slow([&] {
    cache.getOrCompile(a, [&] {
      ++compilesOfA;
      compileStarted.set_value();
      releaseFuture.wait();
      return makePipeline();
    });
  });
  compileStarted.get_future().wait();

  // Inserting b exceeds capacity while a is still compiling; the walk must
  // skip a (not ready) and leave the cache temporarily over capacity.
  cache.getOrCompile(b, makePipeline);
  EXPECT_EQ(cache.stats().evictions, 0u);
  release.set_value();
  slow.join();

  ProgramCache::Lookup again = cache.getOrCompile(a, [&] {
    ++compilesOfA;
    return makePipeline();
  });
  EXPECT_TRUE(again.hit);
  EXPECT_TRUE(again.wasReady);
  EXPECT_EQ(compilesOfA.load(), 1);  // a was never evicted mid-compile
}

TEST(ServeCacheTest, SingleFlightWaiterIsNotAReadyHit) {
  // A lookup that blocks on a concurrent compile paid the compile latency:
  // it reports hit (key present) but not wasReady (the engine surfaces
  // wasReady as Response::cacheHit).
  ProgramCache cache(4);
  workloads::Workload w = workloads::buildWorkload("lstm", smallConfig());
  auto makePipeline = [&] {
    return std::make_unique<runtime::Pipeline>(PipelineKind::TensorSsa,
                                               *w.graph);
  };
  ProgramKey key;
  key.workload = "lstm";
  key.signature = "sig";

  std::promise<void> compileStarted;
  std::promise<void> release;
  std::future<void> releaseFuture = release.get_future();
  std::thread compiler([&] {
    cache.getOrCompile(key, [&] {
      compileStarted.set_value();
      releaseFuture.wait();
      return makePipeline();
    });
  });
  compileStarted.get_future().wait();

  std::atomic<bool> entered{false};
  ProgramCache::Lookup waited;
  std::thread waiter([&] {
    entered = true;
    waited = cache.getOrCompile(key, [&] {
      ADD_FAILURE() << "single-flight violated: waiter compiled";
      return makePipeline();
    });
  });
  // The waiter cannot return before `release`; give it a moment to reach
  // the rendezvous so it observes ready == false.
  while (!entered.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  release.set_value();
  compiler.join();
  waiter.join();

  EXPECT_TRUE(waited.hit);
  EXPECT_FALSE(waited.wasReady);  // blocked for the compile → not a hit
  ProgramCache::Lookup warm = cache.getOrCompile(key, makePipeline);
  EXPECT_TRUE(warm.wasReady);
}

// ---- metrics math ----------------------------------------------------------

TEST(ServeMetricsTest, NearestRankPercentilesAreExact) {
  serve::MetricsCollector collector;
  for (int i = 1; i <= 100; ++i) {
    serve::RequestTiming t;
    t.queueUs = i;
    collector.recordRequest(t);
  }
  serve::MetricsSnapshot snap;
  collector.fill(snap);
  EXPECT_EQ(snap.total.p50Us, 50.0);
  EXPECT_EQ(snap.total.p95Us, 95.0);
  EXPECT_EQ(snap.total.p99Us, 99.0);  // the 99th sample, not the maximum
  EXPECT_EQ(snap.total.maxUs, 100.0);

  serve::MetricsCollector two;
  for (double us : {100.0, 200.0}) {
    serve::RequestTiming t;
    t.queueUs = us;
    two.recordRequest(t);
  }
  serve::MetricsSnapshot pair;
  two.fill(pair);
  EXPECT_EQ(pair.total.p50Us, 100.0);  // p50 of [a, b] is a, not b
  EXPECT_EQ(pair.total.p99Us, 200.0);
}

TEST(ServeMetricsTest, EmptyHistogramPercentilesAreZero) {
  // Regression: nearest-rank percentiles over zero samples must be an exact
  // 0, never an out-of-bounds read or NaN. Exercised at every layer — the
  // raw helper, the obs::Histogram wrapper, and a fresh engine snapshot.
  EXPECT_EQ(obs::percentileNearestRank({}, 0.50), 0.0);
  EXPECT_EQ(obs::percentileNearestRank({}, 0.99), 0.0);

  const obs::HistogramStats empty = obs::Histogram{}.stats();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.p50, 0.0);
  EXPECT_EQ(empty.p95, 0.0);
  EXPECT_EQ(empty.p99, 0.0);
  EXPECT_EQ(empty.mean, 0.0);
  EXPECT_EQ(empty.max, 0.0);

  Engine engine;  // no traffic at all
  const serve::MetricsSnapshot snap = engine.metrics();
  EXPECT_EQ(snap.requests, 0u);
  for (const serve::LatencyStats& stats :
       {snap.total, snap.queue, snap.exec}) {
    EXPECT_EQ(stats.p50Us, 0.0);
    EXPECT_EQ(stats.p95Us, 0.0);
    EXPECT_EQ(stats.p99Us, 0.0);
    EXPECT_EQ(stats.meanUs, 0.0);
    EXPECT_EQ(stats.maxUs, 0.0);
  }
  EXPECT_EQ(snap.throughputRps, 0.0);
}

// ---- deadline sentinel semantics ------------------------------------------

TEST(ServeDeadlineTest, AbsoluteDeadlineSentinelSemantics) {
  // The one mapping every deadline site must share: 0 ⇒ no deadline
  // (kNoDeadline), negative ⇒ expired at the enqueue instant, positive ⇒
  // enqueue + deadlineUs.
  const auto enqueue = std::chrono::steady_clock::now();
  EXPECT_EQ(serve::absoluteDeadline(enqueue, 0), serve::kNoDeadline);
  EXPECT_FALSE(serve::hasDeadline(serve::absoluteDeadline(enqueue, 0)));
  EXPECT_EQ(serve::absoluteDeadline(enqueue, -1), enqueue);
  EXPECT_EQ(serve::absoluteDeadline(enqueue, 250),
            enqueue + std::chrono::microseconds(250));
  EXPECT_TRUE(serve::hasDeadline(serve::absoluteDeadline(enqueue, 250)));
}

TEST(ServeDeadlineTest, ZeroDeadlineIsNoDeadlineNotInstantExpiry) {
  // Regression for the deadlineUs == 0 sentinel: a request with no deadline
  // must survive an arbitrarily long stall between seal and execution. The
  // stall is virtual (FaultInjector::delayNthBatchSeal), so if 0 were ever
  // read as "expired at epoch" by the pre-execution check, this would
  // reject deterministically — no wall-clock sleeps involved.
  serve::FaultInjector injector;
  injector.delayNthBatchSeal(1, 3'600'000'000LL);  // pretend one hour

  EngineOptions options;
  options.maxBatch = 1;
  options.faultInjector = &injector;
  Engine engine(options);

  Request r;
  r.workload = "lstm";
  r.config = smallConfig();
  r.deadlineUs = 0;  // no deadline
  Response resp = engine.submit(std::move(r)).get();  // must not throw
  ASSERT_FALSE(resp.outputs.empty());

  const serve::MetricsSnapshot snap = engine.metrics();
  EXPECT_EQ(snap.requests, 1u);
  EXPECT_EQ(snap.rejectedTotal(), 0u);

  // The same stall with a real (finite) deadline is rejected — the sentinel
  // distinguishes "no deadline" from "very large deadline".
  serve::FaultInjector injector2;
  injector2.delayNthBatchSeal(1, 3'600'000'000LL);
  EngineOptions options2;
  options2.maxBatch = 1;
  options2.faultInjector = &injector2;
  Engine engine2(options2);

  Request tight;
  tight.workload = "lstm";
  tight.config = smallConfig();
  tight.deadlineUs = 1'000'000;
  std::future<Response> future = engine2.submit(std::move(tight));
  try {
    future.get();
    FAIL() << "expected RejectedError(Deadline)";
  } catch (const serve::RejectedError& e) {
    EXPECT_EQ(e.reason(), serve::RejectReason::Deadline);
  }
}

// ---- (b) micro-batched == individual, bitwise -----------------------------

class ServeBatchingBitwiseTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ServeBatchingBitwiseTest, BatchedRunMatchesIndividualRunsBitwise) {
  const std::string workload = GetParam();
  const WorkloadConfig config = smallConfig(2, 6);
  constexpr int kRequests = 3;

  std::vector<std::vector<RtValue>> payloads;
  for (int i = 0; i < kRequests; ++i)
    payloads.push_back(randomInputs(workload, config, 1000 + i));

  // Individual executions (no coalescing).
  std::vector<Response> individual;
  {
    Engine engine(unbatchedOptions());
    for (int i = 0; i < kRequests; ++i) {
      Request r;
      r.workload = workload;
      r.config = config;
      r.inputs = payloads[static_cast<std::size_t>(i)];
      individual.push_back(engine.submit(r).get());
      EXPECT_EQ(individual.back().batchedWith, 1);
    }
  }

  // One coalesced execution: window long enough that all K requests land in
  // the same batch; the batch seals at maxBatch == K, not at the window.
  std::vector<Response> batched;
  {
    EngineOptions o;
    o.maxBatch = kRequests;
    o.maxWaitUs = 2'000'000;
    Engine engine(o);
    Session session = engine.openSession("bitwise");
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < kRequests; ++i) {
      Request r;
      r.workload = workload;
      r.config = config;
      r.inputs = payloads[static_cast<std::size_t>(i)];
      futures.push_back(session.submit(std::move(r)));
    }
    for (auto& f : futures) batched.push_back(f.get());
  }

  for (int i = 0; i < kRequests; ++i) {
    SCOPED_TRACE(workload + " request " + std::to_string(i));
    EXPECT_EQ(batched[static_cast<std::size_t>(i)].batchedWith, kRequests);
    EXPECT_TRUE(bench::outputsBitwiseEqual(
        individual[static_cast<std::size_t>(i)].outputs,
        batched[static_cast<std::size_t>(i)].outputs));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBatchableWorkloads, ServeBatchingBitwiseTest,
                         ::testing::ValuesIn(workloads::workloadNames()));

TEST(ServeBatchingTest, BatchSizeNeverExceedsMaxBatch) {
  EngineOptions o;
  o.maxBatch = 2;
  o.maxWaitUs = 200'000;
  Engine engine(o);
  std::vector<std::future<Response>> futures;
  Request r;
  r.workload = "attention";
  r.config = smallConfig(1, 6);
  r.inputs = randomInputs("attention", r.config, 7);
  for (int i = 0; i < 5; ++i) futures.push_back(engine.submit(r));
  engine.drain();
  int total = 0;
  for (auto& f : futures) {
    Response resp = f.get();
    EXPECT_GE(resp.batchedWith, 1);
    EXPECT_LE(resp.batchedWith, 2);
    ++total;
  }
  EXPECT_EQ(total, 5);
  EXPECT_EQ(engine.metrics().requests, 5u);
}

TEST(ServeBatchingTest, SharedScalarMismatchSplitsTheBatch) {
  // yolact's num_dets is a shared input: requests disagreeing on it must
  // not be coalesced (the batcher seals the open batch instead).
  EngineOptions o;
  o.maxBatch = 2;
  o.maxWaitUs = 500'000;
  Engine engine(o);
  const WorkloadConfig config = smallConfig(1, 6);
  std::vector<RtValue> inputs = Engine::defaultInputs("yolact", config);

  Request a;
  a.workload = "yolact";
  a.config = config;
  a.inputs = inputs;
  Request b = a;
  b.inputs.back() = RtValue(Scalar(std::int64_t{4}));  // fewer detections

  auto fa = engine.submit(a);
  auto fb = engine.submit(b);
  Response ra = fa.get();
  Response rb = fb.get();
  EXPECT_EQ(ra.batchedWith, 1);
  EXPECT_EQ(rb.batchedWith, 1);
}

// ---- (c) concurrent sessions ----------------------------------------------

TEST(ServeConcurrencyTest, EightConcurrentSessionsComeBackClean) {
  EngineOptions o;
  o.maxBatch = 4;
  o.maxWaitUs = 300;
  o.cacheCapacity = 16;
  Engine engine(o);

  constexpr int kSessions = 8;
  constexpr int kRequestsEach = 6;
  const std::vector<std::string> mix = {"lstm", "attention", "ssd", "nasrnn"};

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      Session session = engine.openSession("client-" + std::to_string(s));
      for (int i = 0; i < kRequestsEach; ++i) {
        Request r;
        r.workload = mix[static_cast<std::size_t>((s + i) % mix.size())];
        r.config = smallConfig(1, 6);
        r.inputs = randomInputs(r.workload, r.config,
                                static_cast<std::uint64_t>(s * 100 + i));
        try {
          Response resp = session.infer(std::move(r));
          if (resp.outputs.empty()) ++failures;
          // Invariant: a reported hit never carries compile latency.
          if (resp.cacheHit && resp.timing.compileUs != 0.0) ++failures;
        } catch (...) {
          ++failures;
        }
      }
      EXPECT_EQ(session.requestsSubmitted(), kRequestsEach);
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  serve::MetricsSnapshot snap = engine.metrics();
  EXPECT_EQ(snap.requests, kSessions * kRequestsEach);
  EXPECT_EQ(snap.errors, 0u);
  EXPECT_EQ(snap.sessionsOpened, kSessions);
  EXPECT_GT(snap.throughputRps, 0.0);
  EXPECT_GE(snap.total.p99Us, snap.total.p50Us);
  // Four workloads at one shape each: at most 4 distinct solo programs plus
  // whatever batched row-counts materialized — but every program compiled
  // at most once (cache_hit path from then on).
  EXPECT_EQ(snap.cacheCompiles, snap.cacheMisses);
}

TEST(ServeConcurrencyTest, ThreadedInterpreterBatchesDoNotDeadlock) {
  // pipeline.threads != 1 makes each batch task call parallelFor while
  // holding its program's execMutex. The pool's helping barrier must never
  // steal a sibling batch task there: same program → self-deadlock on the
  // non-recursive mutex; two programs → a lock cycle between two helpers.
  EngineOptions o;
  o.maxBatch = 2;
  o.maxWaitUs = 100;
  o.pipeline.threads = 4;
  Engine engine(o);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 12; ++i) {
    Request r;
    r.workload = (i % 2) != 0 ? "lstm" : "attention";
    r.config = smallConfig(1, 6);
    r.inputs = randomInputs(r.workload, r.config,
                            static_cast<std::uint64_t>(40 + i));
    futures.push_back(engine.submit(std::move(r)));
  }
  for (auto& f : futures) EXPECT_FALSE(f.get().outputs.empty());
  EXPECT_EQ(engine.metrics().errors, 0u);
}

// ---- engine error handling -------------------------------------------------

TEST(ServeEngineTest, MalformedRequestsThrowOnSubmit) {
  Engine engine(unbatchedOptions());
  Request unknown;
  unknown.workload = "resnet";  // not registered
  EXPECT_THROW(engine.submit(unknown), Error);

  Request wrongArity;
  wrongArity.workload = "lstm";
  wrongArity.config = smallConfig();
  wrongArity.inputs = {RtValue(Tensor::zeros({2, 8, 128}))};
  EXPECT_THROW(engine.submit(wrongArity), Error);

  Request wrongBatch;
  wrongBatch.workload = "lstm";
  wrongBatch.config = smallConfig(2, 8);
  wrongBatch.inputs = Engine::defaultInputs("lstm", smallConfig(4, 8));
  EXPECT_THROW(engine.submit(wrongBatch), Error);
}

TEST(ServeEngineTest, ResponsesCarryLatencyDecomposition) {
  Engine engine(unbatchedOptions());
  Request r;
  r.workload = "attention";
  r.config = smallConfig(1, 4);
  Response resp = engine.submit(r).get();
  EXPECT_GE(resp.timing.queueUs, 0.0);
  EXPECT_GT(resp.timing.compileUs, 0.0);  // first request pays the compile
  EXPECT_GT(resp.timing.execUs, 0.0);
  EXPECT_NEAR(resp.timing.totalUs(),
              resp.timing.queueUs + resp.timing.compileUs + resp.timing.execUs,
              1e-9);

  Response warm = engine.submit(r).get();
  EXPECT_TRUE(warm.cacheHit);
  EXPECT_EQ(warm.timing.compileUs, 0.0);  // hits pay no compile latency
}

TEST(ServeEngineTest, BatchTraitsRegistryMatchesBuiltWorkloads) {
  for (const std::string& name : workloads::workloadNames()) {
    workloads::Workload w = workloads::buildWorkload(name, smallConfig(1, 4));
    const workloads::BatchTraits& traits = workloads::workloadBatchTraits(name);
    EXPECT_EQ(w.graph->inputs().size(), traits.inputDims.size()) << name;
    EXPECT_EQ(w.graph->outputs().size(), traits.outputDims.size()) << name;
    EXPECT_EQ(w.inputs.size(), traits.inputDims.size()) << name;
    EXPECT_TRUE(traits.batchable()) << name;
    // Batched inputs really are tensors carrying config.batch at that dim.
    for (std::size_t i = 0; i < traits.inputDims.size(); ++i) {
      const int d = traits.inputDims[i];
      if (d < 0) continue;
      ASSERT_TRUE(w.inputs[i].isTensor()) << name << " input " << i;
      EXPECT_EQ(w.inputs[i].tensor().size(d), 1) << name << " input " << i;
    }
  }
}

TEST(ServePipelineOptionsTest, EqualityAndHashFollowMembers) {
  PipelineOptions a, b;
  EXPECT_EQ(a, b);
  EXPECT_EQ(runtime::hashValue(a), runtime::hashValue(b));
  b.threads = 4;
  EXPECT_NE(a, b);
  b = a;
  b.useTexpr = false;
  EXPECT_NE(a, b);
  b = a;
  b.device = runtime::DeviceSpec::consumer();
  EXPECT_NE(a, b);
  EXPECT_NE(runtime::hashValue(a), runtime::hashValue(b));
}

}  // namespace
}  // namespace tssa
