// Differential fuzz harness for the texpr JIT: randomized fused regions
// must produce bitwise-identical results through the native-code path and
// the tree-walking interpreter, at every thread count, and every decline
// reason must fall back cleanly (same results, counter incremented).
//
// Case count defaults to 1000 and is overridable via TSSA_FUZZ_REPS (CI's
// sanitizer legs run a reduced sweep). Structures repeat every
// kStructureCycle cases so the number of distinct JIT compiles stays
// bounded while data values keep changing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/runtime/thread_pool.h"
#include "src/tensor/random.h"
#include "src/texpr/codegen.h"
#include "src/texpr/jit.h"
#include "src/texpr/texpr.h"
#include "tests/property_gen.h"

namespace tssa {
namespace {

using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::OpKind;
using ir::Type;
using ir::Value;
using runtime::RtValue;
using testing_support::FusedRegionGenerator;

int fuzzReps() {
  const char* reps = std::getenv("TSSA_FUZZ_REPS");
  if (reps == nullptr) return 1000;
  const int n = std::atoi(reps);
  return n > 0 ? n : 1000;
}

/// Distinct structure seeds per sweep: bounds the number of kernels the
/// sweep compiles (~one per structure × contiguity/dtype signature).
constexpr std::uint64_t kStructureCycle = 150;

void expectBitwiseEqual(const std::vector<RtValue>& a,
                        const std::vector<RtValue>& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(allClose(a[i].tensor(), b[i].tensor(), 0.0))
        << what << " output " << i << ":\n"
        << a[i].tensor().toString() << "\nvs\n"
        << b[i].tensor().toString();
  }
}

TEST(TexprFuzzTest, JitMatchesInterpreterBitwise) {
  const int reps = fuzzReps();
  const int hw = std::max(2, runtime::ThreadPool::hardwareThreads());
  auto& cache = texpr::jit::KernelCache::instance();
  for (int i = 0; i < reps; ++i) {
    const std::uint64_t structSeed =
        101 + static_cast<std::uint64_t>(i) % kStructureCycle;
    const std::uint64_t dataSeed = 7000 + static_cast<std::uint64_t>(i);
    Graph g;
    Rng structRng(structSeed);
    Rng dataRng(dataSeed);
    FusedRegionGenerator gen(g, structRng, dataRng);
    auto built = gen.build();
    SCOPED_TRACE("case " + std::to_string(i) + " structSeed " +
                 std::to_string(structSeed) + " dataSeed " +
                 std::to_string(dataSeed));
    ir::verify(g);
    ASSERT_TRUE(texpr::Kernel::supports(*built.body));

    texpr::Kernel jitKernel(*built.body, /*allowJit=*/true);
    texpr::Kernel interpKernel(*built.body, /*allowJit=*/false);

    const auto before = cache.stats();
    const auto jitSerial = jitKernel.run(built.inputs, nullptr, 1);
    const auto after = cache.stats();
    // Every generated structure is JIT-supported: the run must have engaged
    // the native path (fresh compile or cache hit), never declined. With
    // TSSA_TEXPR_JIT=0 the sweep still runs as a pure differential check of
    // the interpreter against itself at both thread counts.
    if (texpr::jit::jitEnabled()) {
      EXPECT_EQ(after.declines, before.declines);
      EXPECT_GE(after.hits + after.misses, before.hits + before.misses + 1);
    }

    const auto interpSerial = interpKernel.run(built.inputs, nullptr, 1);
    expectBitwiseEqual(jitSerial, interpSerial, "jit vs interp, serial");

    const auto jitThreaded = jitKernel.run(built.inputs, nullptr, hw);
    expectBitwiseEqual(jitThreaded, interpSerial,
                       "jit(threads=" + std::to_string(hw) + ") vs interp");
    const auto interpThreaded = interpKernel.run(built.inputs, nullptr, hw);
    expectBitwiseEqual(interpThreaded, interpSerial,
                       "interp threaded vs serial");
  }
}

/// Builds `relu(maskedFill(p0, p1 > p0, fill))` with `fill` a scalar param —
/// MaskedFill is structurally declined by the codegen (reason "op").
std::unique_ptr<Graph> maskedFillGraph() {
  auto g = std::make_unique<Graph>();
  Value* in0 = g->addInput(Type::tensor());
  Value* in1 = g->addInput(Type::tensor());
  Value* inFill = g->addInput(Type::floating());
  IRBuilder b(*g);
  Node* group = b.emitNode(OpKind::FusionGroup, {in0, in1, inFill}, 0);
  Block* body = group->addBlock();
  Value* p0 = body->addParam(in0->type());
  Value* p1 = body->addParam(in1->type());
  Value* fill = body->addParam(inFill->type());
  IRBuilder inner(*g);
  inner.setInsertionPointToEnd(body);
  Value* mask = inner.gt(p1, p0);
  Node* mf = inner.emitNode(OpKind::MaskedFill, {p0, mask, fill}, 1);
  body->addReturn(inner.relu(mf->output()));
  group->addOutput(Type::tensor());
  g->addOutput(group->output(0));
  return g;
}

/// Bool+Bool arithmetic promotes to Bool, which the codegen declines
/// (reason "dtype") while the interpreter happily evaluates it.
std::unique_ptr<Graph> boolArithGraph() {
  auto g = std::make_unique<Graph>();
  Value* in0 = g->addInput(Type::tensor());
  Value* in1 = g->addInput(Type::tensor());
  IRBuilder b(*g);
  Node* group = b.emitNode(OpKind::FusionGroup, {in0, in1}, 0);
  Block* body = group->addBlock();
  Value* p0 = body->addParam(in0->type());
  Value* p1 = body->addParam(in1->type());
  IRBuilder inner(*g);
  inner.setInsertionPointToEnd(body);
  body->addReturn(inner.add(inner.gt(p0, p1), inner.le(p0, p1)));
  group->addOutput(Type::tensor());
  g->addOutput(group->output(0));
  return g;
}

Block* soleGroupBody(Graph& g) {
  for (Node* n : *g.topBlock())
    if (n->kind() == OpKind::FusionGroup) return n->block(0);
  return nullptr;
}

TEST(TexprFuzzTest, OpDeclineFallsBackBitwise) {
  if (!texpr::jit::jitEnabled()) GTEST_SKIP() << "texpr JIT disabled";
  auto g = maskedFillGraph();
  Block* body = soleGroupBody(*g);
  ASSERT_NE(body, nullptr);
  Rng rng(11);
  std::vector<RtValue> inputs{RtValue(rng.uniform({3, 4}, -1, 1)),
                              RtValue(rng.uniform({3, 4}, -1, 1)),
                              RtValue(Scalar(0.5))};
  auto& cache = texpr::jit::KernelCache::instance();
  texpr::Kernel jitKernel(*body, /*allowJit=*/true);
  texpr::Kernel interpKernel(*body, /*allowJit=*/false);
  const auto before = cache.stats();
  const auto a = jitKernel.run(inputs, nullptr, 1);
  const auto after = cache.stats();
  EXPECT_EQ(after.declines, before.declines + 1);
  EXPECT_EQ(after.hits + after.misses, before.hits + before.misses);
  const auto b = interpKernel.run(inputs, nullptr, 1);
  expectBitwiseEqual(a, b, "op decline");
}

TEST(TexprFuzzTest, DtypeDeclineFallsBackBitwise) {
  if (!texpr::jit::jitEnabled()) GTEST_SKIP() << "texpr JIT disabled";
  auto g = boolArithGraph();
  Block* body = soleGroupBody(*g);
  ASSERT_NE(body, nullptr);
  Rng rng(12);
  std::vector<RtValue> inputs{RtValue(rng.uniform({4, 5}, -1, 1)),
                              RtValue(rng.uniform({4, 5}, -1, 1))};
  auto& cache = texpr::jit::KernelCache::instance();
  texpr::Kernel jitKernel(*body, /*allowJit=*/true);
  texpr::Kernel interpKernel(*body, /*allowJit=*/false);
  const auto before = cache.stats();
  const auto a = jitKernel.run(inputs, nullptr, 1);
  const auto after = cache.stats();
  EXPECT_EQ(after.declines, before.declines + 1);
  const auto b = interpKernel.run(inputs, nullptr, 1);
  expectBitwiseEqual(a, b, "dtype decline");
}

TEST(TexprFuzzTest, ToolchainFailureFallsBackBitwise) {
  if (!texpr::jit::jitEnabled()) GTEST_SKIP() << "texpr JIT disabled";
  // Point the per-compile compiler override at /bin/false: the compile
  // fails, the launch declines (reason "toolchain"), and the interpreter
  // result is served unchanged. The cache is cleared first so the key
  // cannot be satisfied by an earlier successful compile.
  ::setenv("TSSA_JIT_CC", "/bin/false", 1);
  auto& cache = texpr::jit::KernelCache::instance();
  cache.clearForTesting();

  Graph g;
  Rng structRng(7);
  Rng dataRng(77);
  FusedRegionGenerator gen(g, structRng, dataRng);
  auto built = gen.build();
  texpr::Kernel jitKernel(*built.body, /*allowJit=*/true);
  texpr::Kernel interpKernel(*built.body, /*allowJit=*/false);

  const auto before = cache.stats();
  const auto a = jitKernel.run(built.inputs, nullptr, 1);
  const auto after = cache.stats();
  ::unsetenv("TSSA_JIT_CC");
  cache.clearForTesting();

  EXPECT_EQ(after.compileFails, before.compileFails + 1);
  EXPECT_EQ(after.declines, before.declines + 1);
  const auto b = interpKernel.run(built.inputs, nullptr, 1);
  expectBitwiseEqual(a, b, "toolchain decline");

  // The failure is memoized per kernel: a second run declines again without
  // attempting another compile.
  const auto mid = cache.stats();
  const auto c = jitKernel.run(built.inputs, nullptr, 1);
  const auto last = cache.stats();
  EXPECT_EQ(last.compileFails, mid.compileFails);
  EXPECT_EQ(last.declines, mid.declines + 1);
  expectBitwiseEqual(c, b, "memoized toolchain decline");
}

TEST(TexprFuzzTest, DisabledKernelNeverTouchesJit) {
  Graph g;
  Rng structRng(9);
  Rng dataRng(99);
  FusedRegionGenerator gen(g, structRng, dataRng);
  auto built = gen.build();
  auto& cache = texpr::jit::KernelCache::instance();
  texpr::Kernel kernel(*built.body, /*allowJit=*/false);
  const auto before = cache.stats();
  (void)kernel.run(built.inputs, nullptr, 1);
  const auto after = cache.stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.declines, before.declines);
}

}  // namespace
}  // namespace tssa
