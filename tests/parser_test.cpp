// Tests for the textual IR parser: print -> parse -> print must be a
// fixpoint, and parsed graphs must execute identically.
#include <gtest/gtest.h>

#include "src/core/lower_inplace.h"
#include "src/core/tensor_ssa.h"
#include "src/ir/builder.h"
#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/runtime/interpreter.h"
#include "src/tensor/random.h"
#include "src/workloads/workload.h"
#include "tests/property_gen.h"

namespace tssa {
namespace {

using ir::Graph;
using ir::IRBuilder;
using ir::parseGraph;
using ir::Type;
using ir::Value;
using runtime::Interpreter;
using runtime::RtValue;

void expectRoundTrip(const Graph& g) {
  // Transformed graphs have gaps in their value numbering, and parsing
  // renumbers densely — so compare after one normalizing round trip:
  // print(parse(s)) must be a fixpoint.
  const std::string once = toString(g);
  auto parsed = parseGraph(once);
  ir::verify(*parsed);
  const std::string normalized = toString(*parsed);
  auto reparsed = parseGraph(normalized);
  ir::verify(*reparsed);
  EXPECT_EQ(toString(*reparsed), normalized);
  // And the op/structure sequence must survive the first trip exactly.
  EXPECT_EQ(parsed->countNodes(), g.countNodes());
}

TEST(ParserTest, SimpleGraphRoundTrips) {
  Graph g;
  Value* a = g.addInput(Type::tensor(DType::Float32), "a");
  Value* b = g.addInput(Type::tensor(), "b");
  IRBuilder bld(g);
  g.addOutput(bld.relu(bld.add(a, b)));
  expectRoundTrip(g);
}

TEST(ParserTest, AttributesRoundTrip) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder bld(g);
  Value* z = bld.zeros({2, 3}, DType::Int64);
  Value* s = bld.slice(a, 0, bld.constInt(1), bld.constInt(-1), 2);
  Value* c = bld.clamp(s, Scalar(-0.5), Scalar(1.5));
  Value* srt = bld.argsort(c, true);
  g.addOutput(z);
  g.addOutput(srt);
  expectRoundTrip(g);
}

TEST(ParserTest, ControlFlowRoundTrips) {
  Graph g;
  Value* n = g.addInput(Type::integer(), "n");
  Value* cond = g.addInput(Type::boolean(), "c");
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder bld(g);
  ir::Node* loop = bld.makeLoop(n, {a});
  ir::Block* body = loop->block(0);
  {
    IRBuilder ib(g);
    ib.setInsertionPointToEnd(body);
    body->addReturn(ib.sigmoid(body->param(1)));
  }
  ir::Node* ifNode = bld.makeIf(cond, 1);
  {
    IRBuilder tb(g);
    tb.setInsertionPointToEnd(ifNode->block(0));
    ifNode->block(0)->addReturn(tb.relu(loop->output(0)));
    tb.setInsertionPointToEnd(ifNode->block(1));
    ifNode->block(1)->addReturn(tb.neg(loop->output(0)));
  }
  g.addOutput(ifNode->output(0));
  expectRoundTrip(g);
}

TEST(ParserTest, ParsedGraphExecutesIdentically) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder bld(g);
  Value* buf = bld.clone(a);
  Value* row = bld.select(buf, 0, bld.constInt(0));
  bld.fill_(row, bld.constFloat(7.0));
  g.addOutput(buf);

  auto parsed = parseGraph(toString(g));
  Interpreter interp;
  std::vector<RtValue> in{RtValue(Tensor::zeros({2, 2}))};
  auto expected = interp.run(g, in);
  auto actual = interp.run(*parsed, in);
  EXPECT_TRUE(allClose(expected[0].tensor(), actual[0].tensor(), 0.0));
}

TEST(ParserTest, ConvertedGraphRoundTrips) {
  // TensorSSA output (immut::access/assign with view attrs) parses back.
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder bld(g);
  Value* buf = bld.clone(a);
  Value* row = bld.select(buf, 0, bld.constInt(1));
  bld.copy_(row, bld.relu(row));
  g.addOutput(buf);
  core::lowerInplaceOps(g);
  core::convertToTensorSSA(g);
  expectRoundTrip(g);
}

TEST(ParserTest, WorkloadsRoundTripStructurally) {
  // Tensor-valued constants print only shapes, so a parsed workload has
  // zeroed weights — but its *printed form* must reach a fixpoint.
  workloads::WorkloadConfig config;
  config.seqLen = 4;
  for (const std::string& name : workloads::workloadNames()) {
    workloads::Workload w = workloads::buildWorkload(name, config);
    expectRoundTrip(*w.graph);
  }
}

TEST(ParserTest, RandomProgramsRoundTrip) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 811 + 3);
    Graph g;
    testing_support::ProgramGenerator gen(g, rng);
    gen.generate(8);
    expectRoundTrip(g);
  }
}

TEST(ParserTest, ErrorsAreDiagnosed) {
  EXPECT_THROW(parseGraph("not a graph"), Error);
  EXPECT_THROW(parseGraph("graph(%a : Tensor):\n  %1 : Tensor = "
                          "aten::nonsense(%a)\n  return (%1)\n"),
               Error);
  EXPECT_THROW(parseGraph("graph(%a : Tensor):\n  return (%undefined)\n"),
               Error);
}

TEST(ParserTest, ParseAuthoredProgram) {
  // The parser as a test-authoring tool: write IR as text, run it.
  const std::string text = R"(graph(%x : f32 Tensor, %n : int):
  %acc : Tensor = aten::clone(%x)
  %out : Tensor = prim::Loop(%n, %acc)
    block0(%i : int, %cur : Tensor):
      %one : f32 Tensor = prim::Constant[tensor=<f32[]>]()
      %next : Tensor = aten::add(%cur, %one)
      -> (%next)
  return (%out)
)";
  auto g = parseGraph(text);
  ir::verify(*g);
  Interpreter interp;
  std::vector<RtValue> in{RtValue(Tensor::zeros({2})),
                          RtValue(Scalar(std::int64_t{5}))};
  auto out = interp.run(*g, in);
  // The parsed constant is zeros (lossy tensor attrs), so adding it five
  // times keeps zeros — structure and execution still work end to end.
  EXPECT_EQ(out[0].tensor().scalarAtLinear(0), 0.0);
}

}  // namespace
}  // namespace tssa
