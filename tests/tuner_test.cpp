// Tests for the config autotuner (src/tune, ROADMAP item 5).
//
// The properties a tuner must not be allowed to fudge:
//   * determinism — the same seed replays the same search to the same
//     config, so a tuned deployment is reproducible;
//   * honesty of the analytic phase — the winner's modelled latency is
//     never above the default's, because the default seeds the search;
//   * semantic neutrality — a tuned config changes scheduling only, so
//     tuned and default programs are bitwise identical on every workload,
//     across thread counts and texpr-JIT modes;
//   * safe failure — an online rejection (recorded fault or sustained
//     regression) falls the entry back to the default heuristics instead
//     of sticking with a bad config.
// TuneConcurrencyTest runs under TSan in CI: serving threads record
// measurements while readers snapshot online stats and resolve configs.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/runtime/pipeline.h"
#include "src/runtime/thread_pool.h"
#include "src/tune/tuner.h"
#include "src/workloads/workload.h"

namespace tssa {
namespace {

using runtime::PipelineKind;
using runtime::PipelineOptions;
using tune::Autotuner;
using tune::TunedConfig;
using tune::TuneResult;
using tune::TunerOptions;

TunerOptions fastSearch(std::uint64_t seed = 7) {
  TunerOptions opts;
  opts.seed = seed;
  opts.searchSteps = 12;
  opts.measure = false;  // analytic only: fully deterministic, no timing
  return opts;
}

workloads::WorkloadConfig smallConfig() {
  workloads::WorkloadConfig config;
  config.batch = 2;
  config.seqLen = 8;
  return config;
}

TEST(TuneTest, SearchIsDeterministicUnderSeed) {
  const workloads::WorkloadConfig config = smallConfig();
  const PipelineOptions base;
  for (const std::string& name : workloads::workloadNames()) {
    Autotuner a(fastSearch(42));
    Autotuner b(fastSearch(42));
    const TuneResult ra = a.tune(name, config, PipelineKind::TensorSsa, base);
    const TuneResult rb = b.tune(name, config, PipelineKind::TensorSsa, base);
    EXPECT_EQ(ra.config, rb.config) << name;
    EXPECT_EQ(ra.evaluated, rb.evaluated) << name;
    EXPECT_DOUBLE_EQ(ra.tunedSimUs, rb.tunedSimUs) << name;
    EXPECT_DOUBLE_EQ(ra.defaultSimUs, rb.defaultSimUs) << name;
  }
}

TEST(TuneTest, AnalyticWinnerNeverWorseThanDefault) {
  const workloads::WorkloadConfig config = smallConfig();
  const PipelineOptions base;
  Autotuner tuner(fastSearch());
  for (const std::string& name : workloads::workloadNames()) {
    for (PipelineKind kind :
         {PipelineKind::TensorSsa, PipelineKind::TorchScriptNnc}) {
      const TuneResult r = tuner.tune(name, config, kind, base);
      EXPECT_LE(r.tunedSimUs, r.defaultSimUs)
          << name << "/" << runtime::pipelineName(kind);
      EXPECT_GT(r.evaluated, 1) << name;
      EXPECT_FALSE(r.measurementFailed) << name;
    }
  }
}

TEST(TuneTest, TunedAndDefaultAreBitwiseIdenticalOnAllWorkloads) {
  const workloads::WorkloadConfig config = smallConfig();
  const PipelineOptions base;
  Autotuner tuner(fastSearch());
  const int hw = std::max(2, runtime::ThreadPool::hardwareThreads());
  for (const std::string& name : workloads::workloadNames()) {
    tuner.tune(name, config, PipelineKind::TensorSsa, base);
    const workloads::Workload w = workloads::buildWorkload(name, config);
    runtime::Pipeline reference(PipelineKind::TensorSsa, *w.graph, base);
    const auto expected = reference.run(w.inputs);

    // The tuned config, then the tuned config crossed with every
    // wall-clock-only knob the measured shortlist may flip: all must
    // reproduce the default bit-for-bit.
    PipelineOptions tuned =
        tuner.pipelineFor(name, PipelineKind::TensorSsa, base);
    std::vector<PipelineOptions> variants = {tuned};
    for (const int threads : {1, hw}) {
      for (const bool jit : {false, true}) {
        PipelineOptions v = tuned;
        v.threads = threads;
        v.texprJit = jit;
        variants.push_back(v);
      }
    }
    for (const std::size_t cap : {std::size_t{2}, std::size_t{4}}) {
      PipelineOptions v = tuned;
      v.fusionMaxOps = cap;
      variants.push_back(v);
    }
    {
      PipelineOptions v = tuned;
      v.parallelizeMask = 0;
      variants.push_back(v);
      v = tuned;
      v.memoryPlan = false;
      variants.push_back(v);
    }
    for (const PipelineOptions& v : variants) {
      runtime::Pipeline pipeline(PipelineKind::TensorSsa, *w.graph, v);
      const auto got = pipeline.run(w.inputs);
      EXPECT_TRUE(bench::outputsBitwiseEqual(expected, got))
          << name << " threads=" << v.threads << " jit=" << v.texprJit;
    }
  }
}

TEST(TuneTest, UntunedWorkloadKeepsBaseOptions) {
  Autotuner tuner(fastSearch());
  PipelineOptions base;
  base.threads = 3;
  const PipelineOptions resolved =
      tuner.pipelineFor("yolov3", PipelineKind::TensorSsa, base);
  EXPECT_EQ(runtime::hashValue(resolved), runtime::hashValue(base));
  const Autotuner::BatchOverride bo =
      tuner.batchOverride("yolov3", PipelineKind::TensorSsa);
  EXPECT_EQ(bo.maxBatch, 0);
  EXPECT_LT(bo.maxWaitUs, 0);
}

TEST(TuneTest, RecordedFailureRejectsAndFallsBackToDefaults) {
  const PipelineOptions base;
  Autotuner tuner(fastSearch());
  tuner.tune("attention", smallConfig(), PipelineKind::TensorSsa, base);
  ASSERT_TRUE(tuner.result("attention", PipelineKind::TensorSsa).has_value());

  tuner.recordFailure("attention", PipelineKind::TensorSsa);
  const Autotuner::OnlineStats stats =
      tuner.onlineStats("attention", PipelineKind::TensorSsa);
  EXPECT_TRUE(stats.hasEntry);
  EXPECT_TRUE(stats.rejected);
  // Rejected ⇒ serving resolves the untouched base options again, not the
  // tuned config — the bad config does not stick.
  const PipelineOptions resolved =
      tuner.pipelineFor("attention", PipelineKind::TensorSsa, base);
  EXPECT_EQ(runtime::hashValue(resolved), runtime::hashValue(base));
}

TEST(TuneTest, SustainedOnlineRegressionRejectsTunedEntry) {
  TunerOptions opts;
  opts.seed = 5;
  opts.searchSteps = 8;
  opts.measure = true;  // rejection compares against the measured default
  opts.measureReps = 1;
  opts.minOnlineSamples = 2;
  opts.rejectRatio = 1.5;
  Autotuner tuner(opts);
  const PipelineOptions base;
  const TuneResult r =
      tuner.tune("lstm", smallConfig(), PipelineKind::TensorSsa, base);
  ASSERT_FALSE(r.measurementFailed);
  ASSERT_GT(r.defaultNsPerIter, 0.0);

  // Two served samples at 1000× the measured default: mean blows past
  // rejectRatio, the entry flips to rejected, serving returns to base.
  const double awful = r.defaultNsPerIter * 1000.0;
  tuner.recordMeasurement("lstm", PipelineKind::TensorSsa, awful);
  EXPECT_FALSE(tuner.onlineStats("lstm", PipelineKind::TensorSsa).rejected);
  tuner.recordMeasurement("lstm", PipelineKind::TensorSsa, awful);
  const Autotuner::OnlineStats stats =
      tuner.onlineStats("lstm", PipelineKind::TensorSsa);
  EXPECT_TRUE(stats.rejected);
  EXPECT_EQ(stats.samples, 2u);
  const PipelineOptions resolved =
      tuner.pipelineFor("lstm", PipelineKind::TensorSsa, base);
  EXPECT_EQ(runtime::hashValue(resolved), runtime::hashValue(base));
}

TEST(TuneTest, HealthyOnlineSamplesKeepTunedEntry) {
  TunerOptions opts;
  opts.seed = 5;
  opts.searchSteps = 8;
  opts.measure = true;
  opts.measureReps = 1;
  opts.minOnlineSamples = 2;
  Autotuner tuner(opts);
  const PipelineOptions base;
  const TuneResult r =
      tuner.tune("lstm", smallConfig(), PipelineKind::TensorSsa, base);
  ASSERT_GT(r.defaultNsPerIter, 0.0);
  for (int i = 0; i < 16; ++i)
    tuner.recordMeasurement("lstm", PipelineKind::TensorSsa,
                            r.defaultNsPerIter * 0.5);
  EXPECT_FALSE(tuner.onlineStats("lstm", PipelineKind::TensorSsa).rejected);
}

// Run under TSan in CI: recordMeasurement appends to the sample window while
// other threads snapshot onlineStats and resolve configs. The stats snapshot
// is taken under the entry lock (the race this test pinned down).
TEST(TuneConcurrencyTest, OnlineRecordingRacesWithReaders) {
  Autotuner tuner(fastSearch());
  const PipelineOptions base;
  tuner.tune("attention", smallConfig(), PipelineKind::TensorSsa, base);

  constexpr int kWriters = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&tuner, t] {
      for (int i = 0; i < kPerThread; ++i)
        tuner.recordMeasurement("attention", PipelineKind::TensorSsa,
                                1000.0 + t * 17 + i);
    });
  }
  threads.emplace_back([&tuner, &base] {
    for (int i = 0; i < kWriters * kPerThread; ++i) {
      const Autotuner::OnlineStats stats =
          tuner.onlineStats("attention", PipelineKind::TensorSsa);
      ASSERT_TRUE(stats.hasEntry);
      if (stats.samples > 0) {
        ASSERT_GT(stats.meanNsPerIter, 0.0);
      }
      (void)tuner.pipelineFor("attention", PipelineKind::TensorSsa, base);
      (void)tuner.batchOverride("attention", PipelineKind::TensorSsa);
    }
  });
  for (std::thread& th : threads) th.join();

  const Autotuner::OnlineStats stats =
      tuner.onlineStats("attention", PipelineKind::TensorSsa);
  EXPECT_TRUE(stats.hasEntry);
  EXPECT_GT(stats.samples, 0u);  // window is bounded, but never empty here
}

}  // namespace
}  // namespace tssa
