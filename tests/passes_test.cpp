// Tests for the auxiliary passes: loop unrolling, scalar constant folding,
// and in-place (buffer-donation) marking.
#include <gtest/gtest.h>

#include "src/core/dce.h"
#include "src/core/fusion.h"
#include "src/core/inplace_reuse.h"
#include "src/core/lower_inplace.h"
#include "src/core/tensor_ssa.h"
#include "src/core/unroll.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/runtime/interpreter.h"
#include "src/tensor/random.h"

namespace tssa {
namespace {

using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::OpKind;
using ir::Type;
using ir::Value;
using runtime::Interpreter;
using runtime::RtValue;

std::size_t countKind(const Graph& g, OpKind kind) {
  std::size_t n = 0;
  std::vector<const Block*> stack{g.topBlock()};
  while (!stack.empty()) {
    const Block* b = stack.back();
    stack.pop_back();
    for (const Node* node : *b) {
      if (node->kind() == kind) ++n;
      for (const Block* inner : node->blocks()) stack.push_back(inner);
    }
  }
  return n;
}

TEST(UnrollTest, ConstantTripLoopUnrollsAndMatches) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Node* loop = b.makeLoop(b.constInt(4), {a});
  Block* body = loop->block(0);
  {
    IRBuilder ib(g);
    ib.setInsertionPointToEnd(body);
    body->addReturn(ib.sigmoid(body->param(1)));
  }
  g.addOutput(loop->output(0));
  ir::verify(g);

  Interpreter interp;
  std::vector<RtValue> in{RtValue(Tensor::fromData({0.f, 1.f}, {2}))};
  auto expected = interp.run(g, in);

  EXPECT_EQ(core::unrollLoops(g), 1u);
  core::eliminateDeadCode(g);
  ir::verify(g);
  EXPECT_EQ(countKind(g, OpKind::Loop), 0u);
  EXPECT_EQ(countKind(g, OpKind::Sigmoid), 4u);
  auto actual = interp.run(g, in);
  EXPECT_TRUE(allClose(expected[0].tensor(), actual[0].tensor(), 0.0));
}

TEST(UnrollTest, InductionVariableBecomesConstants) {
  // for i in range(3): acc = acc + b[i]  (uses i as select index)
  Graph g;
  Value* bIn = g.addInput(Type::tensor(), "b");
  Value* acc0 = g.addInput(Type::tensor(), "acc");
  IRBuilder b(g);
  Node* loop = b.makeLoop(b.constInt(3), {acc0});
  Block* body = loop->block(0);
  {
    IRBuilder ib(g);
    ib.setInsertionPointToEnd(body);
    Value* bi = ib.select(bIn, 0, body->param(0));
    body->addReturn(ib.add(body->param(1), bi));
  }
  g.addOutput(loop->output(0));

  Interpreter interp;
  Rng rng(1);
  std::vector<RtValue> in{RtValue(rng.uniform({3, 2})),
                          RtValue(Tensor::zeros({2}))};
  auto expected = interp.run(g, in);
  core::unrollLoops(g);
  core::foldScalarConstants(g);
  core::eliminateDeadCode(g);
  ir::verify(g);
  auto actual = interp.run(g, in);
  EXPECT_TRUE(allClose(expected[0].tensor(), actual[0].tensor(), 0.0));
  EXPECT_EQ(countKind(g, OpKind::Select), 3u);
}

TEST(UnrollTest, DynamicTripLoopIsLeftAlone) {
  Graph g;
  Value* n = g.addInput(Type::integer(), "n");
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Node* loop = b.makeLoop(n, {a});
  Block* body = loop->block(0);
  IRBuilder ib(g);
  ib.setInsertionPointToEnd(body);
  body->addReturn(ib.relu(body->param(1)));
  g.addOutput(loop->output(0));
  EXPECT_EQ(core::unrollLoops(g), 0u);
  EXPECT_EQ(countKind(g, OpKind::Loop), 1u);
}

TEST(UnrollTest, MaxTripBoundRespected) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Node* loop = b.makeLoop(b.constInt(100), {a});
  Block* body = loop->block(0);
  IRBuilder ib(g);
  ib.setInsertionPointToEnd(body);
  body->addReturn(ib.relu(body->param(1)));
  g.addOutput(loop->output(0));
  EXPECT_EQ(core::unrollLoops(g, /*maxTrip=*/16), 0u);
  EXPECT_EQ(core::unrollLoops(g, /*maxTrip=*/128), 1u);
}

TEST(UnrollTest, NestedConstantLoopsFlattenCompletely) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Node* outer = b.makeLoop(b.constInt(2), {a});
  Block* obody = outer->block(0);
  {
    IRBuilder ob(g);
    ob.setInsertionPointToEnd(obody);
    Node* inner = ob.makeLoop(ob.constInt(2), {obody->param(1)});
    Block* ibody = inner->block(0);
    IRBuilder ib(g);
    ib.setInsertionPointToEnd(ibody);
    ibody->addReturn(ib.relu(ibody->param(1)));
    obody->addReturn(inner->output(0));
  }
  g.addOutput(outer->output(0));
  // Innermost-first: the inner loop unrolls before the outer clones it.
  EXPECT_EQ(core::unrollLoops(g), 2u);
  EXPECT_EQ(countKind(g, OpKind::Loop), 0u);
  EXPECT_EQ(countKind(g, OpKind::Relu), 4u);
  ir::verify(g);
}

TEST(FoldTest, FoldsScalarChains) {
  Graph g;
  IRBuilder b(g);
  Value* x = b.scalarAdd(b.constInt(3), b.constInt(4));
  Value* y = b.scalarMul(x, b.constInt(2));
  Value* cmp = b.scalarGe(y, b.constInt(10));
  g.addOutput(y);
  g.addOutput(cmp);
  EXPECT_GE(core::foldScalarConstants(g), 3u);
  core::eliminateDeadCode(g);
  ir::verify(g);
  Interpreter interp;
  auto out = interp.run(g, {});
  EXPECT_EQ(out[0].toInt(), 14);
  EXPECT_TRUE(out[1].toBool());
  EXPECT_EQ(countKind(g, OpKind::ScalarAdd), 0u);
}

TEST(FoldTest, DynamicOperandsNotFolded) {
  Graph g;
  Value* n = g.addInput(Type::integer(), "n");
  IRBuilder b(g);
  g.addOutput(b.scalarAdd(n, b.constInt(1)));
  EXPECT_EQ(core::foldScalarConstants(g), 0u);
}

TEST(InplaceReuseTest, DeadBaseIsDonated) {
  // out = assign(zeros(...), src, identity): zeros is dead after.
  Graph g;
  Value* src = g.addInput(Type::tensor(), "src");
  IRBuilder b(g);
  Value* buf = b.zeros({4, 4});
  Node* assign = b.emitNode(OpKind::Assign, {buf, src}, 1);
  assign->attrs().set("view",
                      Scalar(static_cast<std::int64_t>(OpKind::Identity)));
  g.addOutput(assign->output());
  EXPECT_EQ(core::markInplaceAssigns(g), 1u);
  EXPECT_TRUE(assign->attrs().bOr("inplace", false));
}

TEST(InplaceReuseTest, LiveBaseIsNotDonated) {
  // The old version is also a graph output: cannot write in place.
  Graph g;
  Value* src = g.addInput(Type::tensor(), "src");
  IRBuilder b(g);
  Value* buf = b.zeros({4, 4});
  Node* assign = b.emitNode(OpKind::Assign, {buf, src}, 1);
  assign->attrs().set("view",
                      Scalar(static_cast<std::int64_t>(OpKind::Identity)));
  g.addOutput(assign->output());
  g.addOutput(buf);  // old version escapes
  EXPECT_EQ(core::markInplaceAssigns(g), 0u);
}

TEST(InplaceReuseTest, EarlierReadAllowsDonation) {
  Graph g;
  Value* src = g.addInput(Type::tensor(), "src");
  IRBuilder b(g);
  Value* buf = b.zeros({4, 4});
  Value* read = b.relu(buf);  // read BEFORE the write: fine
  Node* assign = b.emitNode(OpKind::Assign, {buf, src}, 1);
  assign->attrs().set("view",
                      Scalar(static_cast<std::int64_t>(OpKind::Identity)));
  g.addOutput(assign->output());
  g.addOutput(read);
  EXPECT_EQ(core::markInplaceAssigns(g), 1u);
}

TEST(InplaceReuseTest, LaterReadBlocksDonation) {
  Graph g;
  Value* src = g.addInput(Type::tensor(), "src");
  IRBuilder b(g);
  Value* buf = b.zeros({4, 4});
  Node* assign = b.emitNode(OpKind::Assign, {buf, src}, 1);
  assign->attrs().set("view",
                      Scalar(static_cast<std::int64_t>(OpKind::Identity)));
  Value* read = b.relu(buf);  // reads the OLD version after the write
  g.addOutput(assign->output());
  g.addOutput(read);
  EXPECT_EQ(core::markInplaceAssigns(g), 0u);
}

TEST(InplaceReuseTest, ConstantBaseIsNeverDonated) {
  Graph g;
  Value* src = g.addInput(Type::tensor(), "src");
  IRBuilder b(g);
  Value* weight = b.constTensor(Tensor::ones({4}));
  Node* assign = b.emitNode(OpKind::Assign, {weight, src}, 1);
  assign->attrs().set("view",
                      Scalar(static_cast<std::int64_t>(OpKind::Identity)));
  g.addOutput(assign->output());
  EXPECT_EQ(core::markInplaceAssigns(g), 0u);
}

TEST(InplaceReuseTest, GraphInputBaseIsNeverDonated) {
  Graph g;
  Value* buf = g.addInput(Type::tensor(), "buf");
  Value* src = g.addInput(Type::tensor(), "src");
  IRBuilder b(g);
  Node* assign = b.emitNode(OpKind::Assign, {buf, src}, 1);
  assign->attrs().set("view",
                      Scalar(static_cast<std::int64_t>(OpKind::Identity)));
  g.addOutput(assign->output());
  EXPECT_EQ(core::markInplaceAssigns(g), 0u);
}

TEST(DeviceModelTest, KernelTimeRoofline) {
  runtime::DeviceSpec d = runtime::DeviceSpec::dataCenter();
  // Pure launch.
  EXPECT_DOUBLE_EQ(d.kernelTimeUs(0, 0), d.launchOverheadUs);
  // 936 GB/s: 936 KB takes 1us on top of launch.
  EXPECT_NEAR(d.kernelTimeUs(936000, 0), d.launchOverheadUs + 1.0, 1e-9);
  // Compute-bound kernel ignores smaller memory term.
  const double t = d.kernelTimeUs(1000, 35600000);
  EXPECT_NEAR(t, d.launchOverheadUs + 1.0, 1e-9);
}

TEST(ProfilerTest, SerialVsPipelinedDispatch) {
  runtime::DeviceSpec dev = runtime::DeviceSpec::dataCenter();
  runtime::HostSpec serial = runtime::HostSpec::eagerPython();
  runtime::HostSpec pipelined = runtime::HostSpec::torchscriptVm();
  runtime::Profiler ps(dev, serial);
  runtime::Profiler pp(dev, pipelined);
  ps.kernel("k", 0, 0, 3.0);
  pp.kernel("k", 0, 0, 3.0);
  EXPECT_DOUBLE_EQ(ps.simTimeUs(), dev.launchOverheadUs + 3.0);
  EXPECT_DOUBLE_EQ(pp.simTimeUs(), dev.launchOverheadUs);  // overlapped
  EXPECT_EQ(ps.kernelLaunches(), 1);
  EXPECT_EQ(ps.kernelHistogram().at("k"), 1);
}

}  // namespace
}  // namespace tssa
