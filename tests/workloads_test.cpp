// Integration tests: every workload runs under every pipeline with
// identical numerics, and the compiled structures match the paper's claims
// (fewer kernels under TensorSSA, ParallelMap on the independent loops).
#include <gtest/gtest.h>

#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/runtime/pipeline.h"
#include "src/workloads/workload.h"

namespace tssa {
namespace {

using runtime::Pipeline;
using runtime::PipelineKind;
using runtime::RtValue;
using workloads::buildWorkload;
using workloads::Workload;
using workloads::WorkloadConfig;

std::size_t countKindRecursive(const ir::Graph& g, ir::OpKind kind) {
  std::size_t n = 0;
  std::vector<const ir::Block*> stack{g.topBlock()};
  while (!stack.empty()) {
    const ir::Block* b = stack.back();
    stack.pop_back();
    for (const ir::Node* node : *b) {
      if (node->kind() == kind) ++n;
      for (const ir::Block* inner : node->blocks()) stack.push_back(inner);
    }
  }
  return n;
}

class WorkloadPipelineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadPipelineTest, AllPipelinesAgree) {
  WorkloadConfig config;
  config.batch = 2;
  config.seqLen = 12;
  Workload w = buildWorkload(GetParam(), config);
  ir::verify(*w.graph);

  std::vector<RtValue> reference;
  std::int64_t tssaLaunches = 0;
  double tssaSim = 0;
  std::int64_t eagerLaunches = 0;
  double bestBaselineSim = 1e300;
  for (PipelineKind kind : runtime::allPipelines()) {
    Pipeline p(kind, *w.graph);
    auto out = p.run(w.inputs);
    if (reference.empty()) {
      reference = out;
    } else {
      ASSERT_EQ(reference.size(), out.size());
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (!reference[i].isTensor()) continue;
        EXPECT_TRUE(allClose(reference[i].tensor(), out[i].tensor(), 1e-4))
            << w.name << " output " << i << " differs under "
            << pipelineName(kind);
      }
    }
    if (kind == PipelineKind::TensorSsa) {
      tssaLaunches = p.profiler().kernelLaunches();
      tssaSim = p.profiler().simTimeUs();
    } else {
      bestBaselineSim = std::min(bestBaselineSim, p.profiler().simTimeUs());
      if (kind == PipelineKind::Eager)
        eagerLaunches = p.profiler().kernelLaunches();
    }
  }
  // The paper's headline: TensorSSA is fastest on every workload, and
  // launches (far) fewer kernels than eager.
  EXPECT_LT(tssaSim, bestBaselineSim) << w.name;
  EXPECT_LT(tssaLaunches, eagerLaunches) << w.name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadPipelineTest,
                         ::testing::ValuesIn(workloads::workloadNames()),
                         [](const auto& info) { return info.param; });

TEST(WorkloadStructureTest, IndependentLoopsParallelize) {
  WorkloadConfig config;
  config.batch = 1;
  config.seqLen = 8;
  for (const std::string& name : {std::string("yolact")}) {
    Workload w = buildWorkload(name, config);
    Pipeline p(PipelineKind::TensorSsa, *w.graph);
    EXPECT_EQ(countKindRecursive(p.compiled(), ir::OpKind::ParallelMap), 1u)
        << name << ":\n"
        << toString(p.compiled());
    EXPECT_EQ(countKindRecursive(p.compiled(), ir::OpKind::Loop), 0u) << name;
  }
}

TEST(WorkloadStructureTest, SequentialLoopsStaySequential) {
  WorkloadConfig config;
  config.seqLen = 8;
  for (const std::string& name :
       {std::string("lstm"), std::string("nasrnn"), std::string("seq2seq"),
        std::string("attention")}) {
    Workload w = buildWorkload(name, config);
    Pipeline p(PipelineKind::TensorSsa, *w.graph);
    EXPECT_EQ(countKindRecursive(p.compiled(), ir::OpKind::Loop), 1u) << name;
    EXPECT_EQ(countKindRecursive(p.compiled(), ir::OpKind::ParallelMap), 0u)
        << name;
  }
}

TEST(WorkloadStructureTest, TensorSsaRemovesAllMutation) {
  WorkloadConfig config;
  config.seqLen = 8;
  for (const std::string& name : workloads::workloadNames()) {
    Workload w = buildWorkload(name, config);
    Pipeline p(PipelineKind::TensorSsa, *w.graph);
    EXPECT_EQ(countKindRecursive(p.compiled(), ir::OpKind::Copy_), 0u)
        << name << ":\n"
        << toString(p.compiled());
  }
}

TEST(WorkloadStructureTest, TensorSsaFusesEveryWorkload) {
  WorkloadConfig config;
  config.seqLen = 8;
  for (const std::string& name : workloads::workloadNames()) {
    Workload w = buildWorkload(name, config);
    Pipeline p(PipelineKind::TensorSsa, *w.graph);
    EXPECT_GE(countKindRecursive(p.compiled(), ir::OpKind::FusionGroup), 1u)
        << name;
  }
}

TEST(WorkloadConfigTest, BatchAndSeqLenChangeInputShapes) {
  WorkloadConfig small;
  small.batch = 1;
  small.seqLen = 4;
  WorkloadConfig big;
  big.batch = 4;
  big.seqLen = 16;
  Workload a = buildWorkload("lstm", small);
  Workload b = buildWorkload("lstm", big);
  EXPECT_EQ(a.inputs[0].tensor().size(0), 1);
  EXPECT_EQ(a.inputs[0].tensor().size(1), 4);
  EXPECT_EQ(b.inputs[0].tensor().size(0), 4);
  EXPECT_EQ(b.inputs[0].tensor().size(1), 16);
}

}  // namespace
}  // namespace tssa
