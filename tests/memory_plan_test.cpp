// Liveness-driven memory planning: the Arena allocator, the liveness
// analysis on hand-built graphs, and the end-to-end runtime contracts —
// planner on/off bitwise identity across every pipeline and thread count,
// steady-state buffer reuse, and the escape rule (tensors returned from a
// program never alias arena memory).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/analysis/liveness.h"
#include "src/ir/builder.h"
#include "src/ir/verifier.h"
#include "src/runtime/pipeline.h"
#include "src/runtime/thread_pool.h"
#include "src/tensor/arena.h"
#include "src/workloads/workload.h"

namespace tssa {
namespace {

using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::Type;
using ir::Value;
using runtime::Pipeline;
using runtime::PipelineKind;
using runtime::PipelineOptions;
using runtime::RtValue;
using runtime::ThreadPool;
using workloads::buildWorkload;
using workloads::Workload;
using workloads::WorkloadConfig;

// ---- Arena ----------------------------------------------------------------

TEST(ArenaTest, ReusesUniquelyOwnedBuffers) {
  Arena arena;
  StoragePtr s = arena.allocate(16, DType::Float32);  // 64 B → class 0
  const std::byte* rawData = s->raw();  // byte buffer, not Storage identity:
  // the pool holds raw vectors, and a vector move preserves the data pointer.
  arena.recycle(std::move(s));
  EXPECT_EQ(arena.stats().recycled, 1);
  EXPECT_EQ(arena.pooledBuffers(), 1u);

  // Same size class (8 × 8 B = 64 B), different dtype: must hand back the
  // pooled buffer, re-typed.
  StoragePtr t = arena.allocate(8, DType::Int64);
  EXPECT_EQ(t->raw(), rawData);
  EXPECT_EQ(t->dtype(), DType::Int64);
  EXPECT_EQ(arena.stats().reusedAllocs, 1);
  EXPECT_EQ(arena.stats().freshAllocs, 1);
  EXPECT_EQ(arena.pooledBuffers(), 0u);
}

TEST(ArenaTest, RefusesSharedBuffers) {
  Arena arena;
  StoragePtr s = arena.allocate(16, DType::Float32);
  StoragePtr alias = s;  // second owner: an escaped view would look like this
  arena.recycle(std::move(s));
  EXPECT_EQ(arena.stats().recycled, 0);
  EXPECT_EQ(arena.stats().recycleMisses, 1);
  EXPECT_EQ(arena.pooledBuffers(), 0u);
  // The surviving owner still sees its data intact.
  EXPECT_NE(alias, nullptr);
  EXPECT_EQ(alias->numel(), 16);
}

TEST(ArenaTest, RecycledBuffersAreZeroFilled) {
  Arena arena;
  StoragePtr s = arena.allocate(16, DType::Float32);
  float* p = s->as<float>();
  for (int i = 0; i < 16; ++i) p[i] = 123.0f;
  arena.recycle(std::move(s));

  StoragePtr t = arena.allocate(16, DType::Float32);
  ASSERT_EQ(arena.stats().reusedAllocs, 1);
  const float* q = t->as<float>();
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(q[i], 0.0f) << "recycled buffer not zeroed at " << i;
}

TEST(ArenaTest, ZeroSizedAllocationsBypassThePool) {
  Arena arena;
  StoragePtr s = arena.allocate(0, DType::Float32);
  ASSERT_NE(s, nullptr);
  arena.recycle(std::move(s));
  EXPECT_EQ(arena.pooledBuffers(), 0u);
}

TEST(ArenaTest, ScopeNestsAndRestores) {
  ASSERT_EQ(Arena::current(), nullptr);
  Arena outer, inner;
  {
    Arena::Scope a(&outer);
    EXPECT_EQ(Arena::current(), &outer);
    {
      Arena::Scope b(&inner);
      EXPECT_EQ(Arena::current(), &inner);
    }
    EXPECT_EQ(Arena::current(), &outer);
  }
  EXPECT_EQ(Arena::current(), nullptr);
}

TEST(ArenaTest, CurrentArenaBacksTensorEmpty) {
  Arena arena;
  {
    Arena::Scope scope(&arena);
    Tensor t = Tensor::zeros({4, 4});
    (void)t;
  }
  EXPECT_GT(arena.stats().freshAllocs, 0);
}

// ---- Liveness analysis ----------------------------------------------------

TEST(LivenessTest, StraightLineDeathsAndEscapes) {
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  Value* b2 = g.addInput(Type::tensor(), "b");
  IRBuilder b(g);
  Value* c = b.add(a, b2);
  Value* d = b.relu(c);
  g.addOutput(d);
  ir::verify(g);

  analysis::MemoryPlan plan = analysis::planMemory(g);
  EXPECT_EQ(plan.totalValues, 4u);    // a, b, c, d
  EXPECT_EQ(plan.plannedDeaths, 3u);  // d escapes via the graph return

  const auto* atAdd = plan.deathsFor(c->definingNode());
  ASSERT_NE(atAdd, nullptr);  // a and b die at their last user, the add
  EXPECT_EQ(atAdd->size(), 2u);
  const auto* atRelu = plan.deathsFor(d->definingNode());
  ASSERT_NE(atRelu, nullptr);
  ASSERT_EQ(atRelu->size(), 1u);
  EXPECT_EQ((*atRelu)[0], c);

  // d must not appear in any death list.
  for (const auto& [node, dead] : plan.deathsAfter)
    for (const Value* v : dead) EXPECT_NE(v, d);
}

TEST(LivenessTest, SlotAssignmentReusesFreedSlots) {
  // A chain of k unary ops keeps at most two values live at once, so the
  // linear scan needs far fewer slots than there are values.
  Graph g;
  Value* a = g.addInput(Type::tensor(), "a");
  IRBuilder b(g);
  Value* v = a;
  for (int i = 0; i < 8; ++i) v = b.relu(v);
  g.addOutput(v);
  ir::verify(g);

  analysis::MemoryPlan plan = analysis::planMemory(g);
  EXPECT_EQ(plan.totalValues, 9u);
  EXPECT_LE(plan.slotCount, 2);
  EXPECT_LT(static_cast<std::size_t>(plan.slotCount), plan.totalValues);
}

TEST(LivenessTest, LoopCarriedValuesEscapeTheBody) {
  // h = tanh(h + x[i]): the carried value is consumed by the body's Return,
  // so nothing the body computes for the next iteration may die inside it.
  Graph g;
  Value* x = g.addInput(Type::tensor(), "x");
  Value* h0 = g.addInput(Type::tensor(), "h");
  Value* n = g.addInput(Type::integer(), "n");
  IRBuilder b(g);
  Node* loop = b.makeLoop(n, {h0});
  Block* body = loop->block(0);
  Value* next = nullptr;
  Value* xi = nullptr;
  {
    IRBuilder i(g);
    i.setInsertionPointToEnd(body);
    Value* iv = body->param(0);
    Value* h = body->param(1);
    xi = i.select(x, 0, iv);
    next = i.tanh(i.add(h, xi));
    body->addReturn(next);
  }
  g.addOutput(loop->output(0));
  ir::verify(g);

  analysis::MemoryPlan plan = analysis::planMemory(g);
  // `next` feeds the body Return: it must never be in a death list.
  for (const auto& [node, dead] : plan.deathsAfter)
    for (const Value* v : dead) EXPECT_NE(v, next);
  // The intermediate slice dies inside the body (at the add that consumes
  // it), so per-iteration temporaries are reclaimed every trip.
  bool xiDies = false;
  for (const auto& [node, dead] : plan.deathsAfter)
    for (const Value* v : dead) xiDies |= (v == xi);
  EXPECT_TRUE(xiDies);
  // x is used inside the loop body; at the top level it must die at the
  // loop node itself, not earlier.
  const auto* atLoop = plan.deathsFor(loop);
  ASSERT_NE(atLoop, nullptr);
  bool xAtLoop = false;
  for (const Value* v : *atLoop) xAtLoop |= (v == x);
  EXPECT_TRUE(xAtLoop);
}

TEST(LivenessTest, WorkloadGraphsShowSlotReuse) {
  for (const std::string& name : workloads::workloadNames()) {
    WorkloadConfig config;
    config.seqLen = 6;
    Workload w = buildWorkload(name, config);
    Pipeline p(PipelineKind::TensorSsa, *w.graph);
    analysis::MemoryPlan plan = analysis::planMemory(p.compiled());
    EXPECT_GT(plan.plannedDeaths, 0u) << name;
    EXPECT_LT(static_cast<std::size_t>(plan.slotCount), plan.totalValues)
        << name << ": no slot reuse in a real workload graph";
  }
}

// ---- End-to-end: bitwise identity, reuse, escape --------------------------

bool bitwiseEqual(const Tensor& a, const Tensor& b) {
  if (a.sizes() != b.sizes() || a.dtype() != b.dtype()) return false;
  for (IndexIterator it(a.sizes()); it.valid(); it.next()) {
    if (a.scalarAt(it.index()) != b.scalarAt(it.index())) return false;
  }
  return true;
}

class MemoryPlanWorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MemoryPlanWorkloadTest, PlannerOnOffBitwiseIdentical) {
  WorkloadConfig config;
  config.batch = 2;
  config.seqLen = 8;
  Workload w = buildWorkload(GetParam(), config);

  for (PipelineKind kind : runtime::allPipelines()) {
    for (int threads : {1, ThreadPool::hardwareThreads()}) {
      PipelineOptions off;
      off.threads = threads;
      off.memoryPlan = false;
      Pipeline pOff(kind, *w.graph, off);
      const std::vector<RtValue> expected = pOff.run(w.inputs);

      PipelineOptions on = off;
      on.memoryPlan = true;
      Pipeline pOn(kind, *w.graph, on);
      const std::vector<RtValue> got = pOn.run(w.inputs);

      ASSERT_EQ(expected.size(), got.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (!expected[i].isTensor()) continue;
        EXPECT_TRUE(bitwiseEqual(expected[i].tensor(), got[i].tensor()))
            << w.name << " / " << pipelineName(kind) << " output " << i
            << " differs with the planner on (threads=" << threads << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, MemoryPlanWorkloadTest,
                         ::testing::ValuesIn(workloads::workloadNames()),
                         [](const auto& info) { return info.param; });

TEST(MemoryPlanTest, SteadyStateReusesBuffers) {
  WorkloadConfig config;
  config.batch = 2;
  config.seqLen = 8;
  Workload w = buildWorkload("attention", config);
  PipelineOptions opts;
  Pipeline p(PipelineKind::TensorSsa, *w.graph, opts);

  p.run(w.inputs);
  const auto cold = p.profiler().memoryCounters();
  ASSERT_GT(cold.freshAllocs, 0);

  p.run(w.inputs);
  p.run(w.inputs);
  const auto warm = p.profiler().memoryCounters();  // run() resets: 3rd only
  EXPECT_GT(warm.reusedAllocs, 0);
  // Steady state should serve the overwhelming majority of intermediates
  // from the pool; only escaping outputs still hit the heap.
  EXPECT_LT(warm.freshAllocs * 5, cold.freshAllocs)
      << "cold fresh=" << cold.freshAllocs
      << " warm fresh=" << warm.freshAllocs
      << " warm reused=" << warm.reusedAllocs
      << " warm recycled=" << warm.recycled
      << " warm misses=" << warm.recycleMisses;
}

TEST(MemoryPlanTest, OutputsNeverAliasArenaMemory) {
  // Hold the first run's outputs across a second run: if any output tensor
  // still aliased arena memory, the second run would overwrite it.
  WorkloadConfig config;
  config.seqLen = 6;
  Workload w = buildWorkload("lstm", config);
  Pipeline p(PipelineKind::TensorSsa, *w.graph);

  const std::vector<RtValue> first = p.run(w.inputs);
  std::vector<Tensor> saved;
  for (const RtValue& v : first)
    if (v.isTensor()) saved.push_back(v.tensor().clone());

  p.run(w.inputs);
  p.run(w.inputs);

  std::size_t k = 0;
  for (const RtValue& v : first) {
    if (!v.isTensor()) continue;
    EXPECT_TRUE(bitwiseEqual(v.tensor(), saved[k]))
        << "output " << k << " was clobbered by a later planned run";
    ++k;
  }
}

TEST(MemoryPlanTest, PlanToggleChangesOptionsHash) {
  PipelineOptions on;
  PipelineOptions off;
  off.memoryPlan = false;
  EXPECT_NE(on, off);
  EXPECT_NE(runtime::hashValue(on), runtime::hashValue(off));
}

}  // namespace
}  // namespace tssa
