#!/usr/bin/env python3
"""CI perf-regression gate over tssa-bench-v1 result files.

Compares one or more --json result files (written by the bench binaries via
bench/bench_common.h BenchReport) against the committed baseline
bench/baseline.json and exits non-zero on a regression:

  * kernel_launches: deterministic, gated EXACTLY. Any increase over the
    baseline fails; any decrease passes but is reported so the baseline can
    be refreshed to lock in the improvement.
  * ns_per_iter: only gated for records with "time_gated": true (wall-clock
    best-of-N over the real executor). Times are normalized by the run's
    calib_ns (a fixed arithmetic loop timed on the same machine), so a slower
    CI runner does not fail the gate; the normalized ratio must stay within
    --threshold (default 1.25 = +25%).
  * extra.rejected / extra.fallback: serving records carry the engine's
    load-shed and degraded-request counters. A record whose baseline shed
    nothing must still shed nothing — throughput numbers from a run that
    silently rejected or degraded part of its traffic are not comparable to
    the baseline, so that is a hard failure, not a note. Records whose
    baseline already sheds (the overload sweep) are exempt.
  * extra.kv_pages: the decode bench's KV-cache page high-water mark over a
    deterministic session mix. Gated EXACTLY like kernel_launches: any
    increase means the paged allocator holds more memory for the same
    traffic. extra.kv_leaked (pages still in use after drain) must stay at
    the baseline's zero — a leak is a hard failure.

Everything else in the records (sim_us, latency percentiles, reuse rates) is
informational: printed on drift, never fatal.

Usage:
  check_bench.py --baseline bench/baseline.json out/fig5.json out/fig6.json
  check_bench.py --baseline bench/baseline.json --update out/*.json   # re-baseline

Re-baselining (--update) rewrites the baseline from the given result files;
commit the result. Do this when a change legitimately alters launch counts
or speeds things up (see README "CI bench gate").
"""

import argparse
import json
import sys

BASELINE_SCHEMA = "tssa-bench-baseline-v1"
RESULT_SCHEMA = "tssa-bench-v1"


def load_results(paths):
    """Returns {key: (record, calib_ns)} for every record in every file."""
    entries = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        if doc.get("schema") != RESULT_SCHEMA:
            sys.exit(f"{path}: expected schema {RESULT_SCHEMA!r}, "
                     f"got {doc.get('schema')!r}")
        calib = float(doc["calib_ns"])
        if calib <= 0:
            sys.exit(f"{path}: non-positive calib_ns")
        for record in doc["results"]:
            key = f"{doc['binary']}/{record['name']}"
            if key in entries:
                sys.exit(f"{path}: duplicate record key {key!r}")
            entries[key] = (record, calib)
    return entries


def write_baseline(entries, path):
    doc = {"schema": BASELINE_SCHEMA, "entries": {}}
    for key in sorted(entries):
        record, calib = entries[key]
        entry = dict(record)
        entry["calib_ns"] = calib
        doc["entries"][key] = entry
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote baseline with {len(entries)} entries to {path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", nargs="+", help="tssa-bench-v1 JSON files")
    parser.add_argument("--baseline", required=True,
                        help="bench/baseline.json")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="max allowed normalized ns_per_iter ratio "
                             "(default 1.25)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the result files "
                             "instead of checking")
    args = parser.parse_args()

    current = load_results(args.results)
    if args.update:
        write_baseline(current, args.baseline)
        return

    with open(args.baseline) as f:
        baseline_doc = json.load(f)
    if baseline_doc.get("schema") != BASELINE_SCHEMA:
        sys.exit(f"{args.baseline}: expected schema {BASELINE_SCHEMA!r}, "
                 f"got {baseline_doc.get('schema')!r}")
    baseline = baseline_doc["entries"]

    failures = []
    notes = []
    checked_launches = checked_times = checked_shedding = 0

    for key, (record, calib) in sorted(current.items()):
        base = baseline.get(key)
        if base is None:
            notes.append(f"NEW       {key} (not in baseline; run --update "
                         "to start tracking it)")
            continue

        cur_launches = record.get("kernel_launches")
        base_launches = base.get("kernel_launches")
        if cur_launches is not None and base_launches is not None:
            checked_launches += 1
            if cur_launches > base_launches:
                failures.append(
                    f"LAUNCHES  {key}: {base_launches} -> {cur_launches} "
                    f"(+{cur_launches - base_launches}); kernel-launch counts "
                    "are deterministic, any increase is a regression")
            elif cur_launches < base_launches:
                notes.append(
                    f"IMPROVED  {key}: launches {base_launches} -> "
                    f"{cur_launches}; consider re-baselining to lock it in")

        cur_ns = record.get("ns_per_iter")
        base_ns = base.get("ns_per_iter")
        if (record.get("time_gated") and base.get("time_gated")
                and cur_ns is not None and base_ns is not None):
            checked_times += 1
            base_calib = float(base["calib_ns"])
            ratio = (cur_ns / calib) / (base_ns / base_calib)
            if ratio > args.threshold:
                failures.append(
                    f"TIME      {key}: normalized {ratio:.2f}x over baseline "
                    f"(raw {base_ns:.0f} -> {cur_ns:.0f} ns/iter, machine "
                    f"factor {calib / base_calib:.2f})")
            elif ratio < 1.0 / args.threshold:
                notes.append(f"IMPROVED  {key}: normalized {ratio:.2f}x")

        # A record whose baseline shed/degraded nothing must still shed
        # nothing: its throughput and latency numbers only mean what the
        # baseline's meant if every request was actually served the same way.
        cur_extra = record.get("extra", {})
        base_extra = base.get("extra", {})

        # KV page high-water: deterministic for the decode bench's fixed
        # session mix, so it gets the kernel_launches treatment — exact,
        # any increase fails, a decrease is a note to re-baseline.
        cur_pages = cur_extra.get("kv_pages")
        base_pages = base_extra.get("kv_pages")
        if cur_pages is not None and base_pages is not None:
            checked_launches += 1
            if cur_pages > base_pages:
                failures.append(
                    f"KV_PAGES  {key}: {base_pages:.0f} -> {cur_pages:.0f} "
                    f"(+{cur_pages - base_pages:.0f}); the paged KV cache "
                    "now holds more pages for the same deterministic "
                    "session mix")
            elif cur_pages < base_pages:
                notes.append(
                    f"IMPROVED  {key}: kv_pages {base_pages:.0f} -> "
                    f"{cur_pages:.0f}; consider re-baselining to lock it in")

        for counter in ("rejected", "fallback", "kv_leaked"):
            cur_n = cur_extra.get(counter)
            base_n = base_extra.get(counter)
            if cur_n is None or base_n is None:
                continue
            checked_shedding += 1
            if base_n == 0 and cur_n > 0:
                if counter == "kv_leaked":
                    detail = (f"{cur_n:.0f} KV pages still in use after "
                              "drain; the paged allocator leaked")
                else:
                    detail = (f"baseline served every request, this run "
                              f"{counter} {cur_n:.0f}; the numbers are not "
                              "comparable (silent load shedding/degradation)")
                failures.append(f"{counter.upper():9s} {key}: {detail}")

    missing = sorted(set(baseline) - set(current))
    for key in missing:
        notes.append(f"MISSING   {key} (in baseline but not in these "
                     "results; fine for partial runs)")

    for note in notes:
        print(note)
    print(f"checked {checked_launches} launch counts, {checked_times} gated "
          f"times, and {checked_shedding} shed/fallback counters against "
          f"{len(baseline)} baseline entries")

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("\nIf this change is intentional, re-baseline:\n"
              "  python3 scripts/check_bench.py --baseline "
              "bench/baseline.json --update <result files>",
              file=sys.stderr)
        sys.exit(1)
    print("bench gate: OK")


if __name__ == "__main__":
    main()
