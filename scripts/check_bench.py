#!/usr/bin/env python3
"""CI perf-regression gate over tssa-bench-v1 result files.

Compares one or more --json result files (written by the bench binaries via
bench/bench_common.h BenchReport) against the committed baseline
bench/baseline.json and exits non-zero on a regression:

  * kernel_launches: deterministic, gated EXACTLY. Any increase over the
    baseline fails; any decrease passes but is reported so the baseline can
    be refreshed to lock in the improvement.
  * ns_per_iter: only gated for records with "time_gated": true (wall-clock
    best-of-N over the real executor). Times are normalized by the run's
    calib_ns (a fixed arithmetic loop timed on the same machine), so a slower
    CI runner does not fail the gate; the normalized ratio must stay within
    --threshold (default 1.25 = +25%). A baseline record with a zero
    ns_per_iter or calib_ns is corrupt, and fails the gate by name rather
    than crashing the division.
  * extra.rejected / extra.fallback: serving records carry the engine's
    load-shed and degraded-request counters. A record whose baseline shed
    nothing must still shed nothing — throughput numbers from a run that
    silently rejected or degraded part of its traffic are not comparable to
    the baseline, so that is a hard failure, not a note. Records whose
    baseline already sheds (the overload sweep) are exempt.
  * extra.kv_pages: the decode bench's KV-cache page high-water mark over a
    deterministic session mix. Gated EXACTLY like kernel_launches: any
    increase means the paged allocator holds more memory for the same
    traffic. extra.kv_leaked (pages still in use after drain) must stay at
    the baseline's zero — a leak is a hard failure.
  * extra.compiles: the serving engine's program-compile count over a
    deterministic request sequence. Gated EXACTLY like kernel_launches: with
    symbolic program keys (DESIGN.md §13) the count stays flat while shape
    diversity grows, so any increase means a request pattern started missing
    the polymorphic cache and re-specializing.

Everything else in the records (sim_us, latency percentiles, reuse rates) is
informational: printed on drift, never fatal.

Usage:
  check_bench.py --baseline bench/baseline.json out/fig5.json out/fig6.json
  check_bench.py --baseline bench/baseline.json --filter=shard/ out/shard.json
  check_bench.py --baseline bench/baseline.json --update out/*.json   # re-baseline
  check_bench.py --self-test                      # gate-logic unit checks

--filter=SUBSTRING gates only records whose "<binary>/<name>" key contains
SUBSTRING, on both sides: non-matching baseline entries are not reported
missing, so a CI leg that runs a single bench binary can gate just its own
records. A filter that matches nothing is an error (a typo must not turn
into a silent pass), and --filter cannot be combined with --update (a
partial rewrite would drop every other baseline entry).

Re-baselining (--update) rewrites the baseline from the given result files;
commit the result. Do this when a change legitimately alters launch counts
or speeds things up (see README "CI bench gate").
"""

import argparse
import json
import sys

BASELINE_SCHEMA = "tssa-bench-baseline-v1"
RESULT_SCHEMA = "tssa-bench-v1"

# extra.* counters that are deterministic for a fixed request sequence and
# therefore gated exactly, kernel_launches-style: any increase fails, any
# decrease is a re-baseline note.
EXACT_EXTRA_GATES = {
    "kv_pages": ("KV_PAGES", "the paged KV cache now holds more pages for "
                 "the same deterministic session mix"),
    "compiles": ("COMPILES", "the program cache now compiles more programs "
                 "for the same deterministic request sequence (a request "
                 "pattern stopped hitting the polymorphic key, DESIGN.md "
                 "§13)"),
}

# The autotuner's measured-win floor: a tune_search summary record whose
# extra.tuned_wins falls below this means the measured shortlist stopped
# finding wall-clock wins on enough workloads (DESIGN.md §15).
TUNED_WINS_FLOOR = 2


def load_results(paths):
    """Returns {key: (record, calib_ns)} for every record in every file."""
    entries = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        if doc.get("schema") != RESULT_SCHEMA:
            sys.exit(f"{path}: expected schema {RESULT_SCHEMA!r}, "
                     f"got {doc.get('schema')!r}")
        calib = float(doc["calib_ns"])
        if calib <= 0:
            sys.exit(f"{path}: non-positive calib_ns")
        for record in doc["results"]:
            key = f"{doc['binary']}/{record['name']}"
            if key in entries:
                sys.exit(f"{path}: duplicate record key {key!r}")
            entries[key] = (record, calib)
    return entries


def write_baseline(entries, path):
    doc = {"schema": BASELINE_SCHEMA, "entries": {}}
    for key in sorted(entries):
        record, calib = entries[key]
        entry = dict(record)
        entry["calib_ns"] = calib
        doc["entries"][key] = entry
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote baseline with {len(entries)} entries to {path}")


def apply_filter(entries, substring):
    """Keeps only entries whose key contains `substring` (no-op if falsy)."""
    if not substring:
        return entries
    return {key: value for key, value in entries.items() if substring in key}


def compare(current, baseline, threshold):
    """Gates `current` ({key: (record, calib)}) against `baseline` entries.

    Returns (failures, notes, checked) where `checked` counts the exact
    gates, time gates, and shed counters actually compared. Pure function of
    its inputs so --self-test can drive it without touching the filesystem.
    """
    failures = []
    notes = []
    checked = {"exact": 0, "times": 0, "shedding": 0, "tuning": 0}

    for key, (record, calib) in sorted(current.items()):
        # Tuner honesty gates are intrinsic to the record (the default run in
        # the same result file is the reference), so they apply whether or
        # not the key has a baseline entry yet.
        extra = record.get("extra", {})
        tuned_sim = extra.get("tuned_sim_us")
        default_sim = extra.get("default_sim_us")
        if tuned_sim is not None and default_sim is not None:
            checked["tuning"] += 1
            if tuned_sim > default_sim:
                failures.append(
                    f"TUNED_SIM {key}: tuned config modelled at "
                    f"{tuned_sim:.1f}us vs default {default_sim:.1f}us; the "
                    "search must never install a config it scored worse than "
                    "the default it started from")
        tuned_wins = extra.get("tuned_wins")
        if tuned_wins is not None:
            checked["tuning"] += 1
            if tuned_wins < TUNED_WINS_FLOOR:
                failures.append(
                    f"TUNED_WINS {key}: only {tuned_wins:.0f} workload(s) "
                    f"with a measured ns/iter win (floor "
                    f"{TUNED_WINS_FLOOR}); the measured shortlist stopped "
                    "beating the default heuristics")

        base = baseline.get(key)
        if base is None:
            notes.append(f"NEW       {key} (not in baseline; run --update "
                         "to start tracking it)")
            continue

        cur_launches = record.get("kernel_launches")
        base_launches = base.get("kernel_launches")
        if cur_launches is not None and base_launches is not None:
            checked["exact"] += 1
            if cur_launches > base_launches:
                failures.append(
                    f"LAUNCHES  {key}: {base_launches} -> {cur_launches} "
                    f"(+{cur_launches - base_launches}); kernel-launch counts "
                    "are deterministic, any increase is a regression")
            elif cur_launches < base_launches:
                notes.append(
                    f"IMPROVED  {key}: launches {base_launches} -> "
                    f"{cur_launches}; consider re-baselining to lock it in")

        cur_ns = record.get("ns_per_iter")
        base_ns = base.get("ns_per_iter")
        if (record.get("time_gated") and base.get("time_gated")
                and cur_ns is not None and base_ns is not None):
            checked["times"] += 1
            base_calib = float(base.get("calib_ns", 0.0))
            if base_ns <= 0 or base_calib <= 0:
                # Never divide by a corrupt baseline: fail the gate naming
                # the record instead of crashing with ZeroDivisionError.
                failures.append(
                    f"BASELINE  {key}: baseline has non-positive "
                    f"ns_per_iter ({base_ns}) or calib_ns ({base_calib}); "
                    "the entry is corrupt — re-baseline it with --update")
            else:
                ratio = (cur_ns / calib) / (base_ns / base_calib)
                if ratio > threshold:
                    failures.append(
                        f"TIME      {key}: normalized {ratio:.2f}x over "
                        f"baseline (raw {base_ns:.0f} -> {cur_ns:.0f} "
                        f"ns/iter, machine factor {calib / base_calib:.2f})")
                elif ratio < 1.0 / threshold:
                    notes.append(f"IMPROVED  {key}: normalized {ratio:.2f}x")

        # A record whose baseline shed/degraded nothing must still shed
        # nothing: its throughput and latency numbers only mean what the
        # baseline's meant if every request was actually served the same way.
        cur_extra = record.get("extra", {})
        base_extra = base.get("extra", {})

        # Deterministic extra counters (KV page high-water, program-compile
        # count) get the kernel_launches treatment — exact, any increase
        # fails, a decrease is a note to re-baseline.
        for counter, (label, why) in EXACT_EXTRA_GATES.items():
            cur_n = cur_extra.get(counter)
            base_n = base_extra.get(counter)
            if cur_n is None or base_n is None:
                continue
            checked["exact"] += 1
            if cur_n > base_n:
                failures.append(
                    f"{label:9s} {key}: {base_n:.0f} -> {cur_n:.0f} "
                    f"(+{cur_n - base_n:.0f}); {why}")
            elif cur_n < base_n:
                notes.append(
                    f"IMPROVED  {key}: {counter} {base_n:.0f} -> "
                    f"{cur_n:.0f}; consider re-baselining to lock it in")

        for counter in ("rejected", "fallback", "kv_leaked"):
            cur_n = cur_extra.get(counter)
            base_n = base_extra.get(counter)
            if cur_n is None or base_n is None:
                continue
            checked["shedding"] += 1
            if base_n == 0 and cur_n > 0:
                if counter == "kv_leaked":
                    detail = (f"{cur_n:.0f} KV pages still in use after "
                              "drain; the paged allocator leaked")
                else:
                    detail = (f"baseline served every request, this run "
                              f"{counter} {cur_n:.0f}; the numbers are not "
                              "comparable (silent load shedding/degradation)")
                failures.append(f"{counter.upper():9s} {key}: {detail}")

    missing = sorted(set(baseline) - set(current))
    for key in missing:
        notes.append(f"MISSING   {key} (in baseline but not in these "
                     "results; fine for partial runs)")
    return failures, notes, checked


def self_test():
    """In-memory unit checks of the gate logic; exits non-zero on failure."""

    def entry(key, **fields):
        base = {"name": key.split("/", 1)[1], "calib_ns": 100.0}
        base.update(fields)
        return base

    checks = []

    def expect(name, cond, detail=""):
        checks.append((name, bool(cond), detail))

    # Clean pass: identical current and baseline produce no failures.
    baseline = {
        "b/ok": entry("b/ok", time_gated=True, ns_per_iter=50.0,
                      kernel_launches=7,
                      extra={"compiles": 1, "rejected": 0}),
    }
    current = {
        "b/ok": ({"name": "ok", "time_gated": True, "ns_per_iter": 50.0,
                  "kernel_launches": 7,
                  "extra": {"compiles": 1, "rejected": 0}}, 100.0),
    }
    failures, notes, checked = compare(current, baseline, 1.25)
    expect("clean pass has no failures", not failures, repr(failures))
    expect("clean pass checked 2 exact + 1 time + 1 shed",
           checked == {"exact": 2, "times": 1, "shedding": 1, "tuning": 0},
           repr(checked))

    # Tuner honesty: a record whose tuned analytic score exceeds the default
    # fails by name, even when the key is not in the baseline yet (the gate
    # is intrinsic to the record, not baseline-relative).
    current = {"t/tune/lstm": ({"name": "tune/lstm",
                                "extra": {"tuned_sim_us": 120.0,
                                          "default_sim_us": 100.0}}, 100.0)}
    failures, _, checked = compare(current, {}, 1.25)
    expect("tuned sim regression fails without a baseline entry",
           len(failures) == 1 and failures[0].startswith("TUNED_SIM")
           and "t/tune/lstm" in failures[0], repr(failures))
    expect("tuning gate counted", checked["tuning"] == 1, repr(checked))
    current = {"t/tune/lstm": ({"name": "tune/lstm",
                                "extra": {"tuned_sim_us": 90.0,
                                          "default_sim_us": 100.0}}, 100.0)}
    failures, _, _ = compare(current, {}, 1.25)
    expect("tuned sim improvement passes", not failures, repr(failures))

    # Measured-win floor: fewer than TUNED_WINS_FLOOR winning workloads in
    # the summary record fails; meeting the floor passes.
    current = {"t/summary": ({"name": "summary",
                              "extra": {"tuned_wins": 1.0}}, 100.0)}
    failures, _, _ = compare(current, {}, 1.25)
    expect("tuned-wins below floor fails",
           len(failures) == 1 and failures[0].startswith("TUNED_WINS"),
           repr(failures))
    current = {"t/summary": ({"name": "summary",
                              "extra": {"tuned_wins": 2.0}}, 100.0)}
    failures, _, _ = compare(current, {}, 1.25)
    expect("tuned-wins at floor passes", not failures, repr(failures))

    # Zero-ns baseline record: must fail cleanly NAMING the record, not
    # crash with ZeroDivisionError.
    baseline = {"b/zero": entry("b/zero", time_gated=True, ns_per_iter=0.0)}
    current = {"b/zero": ({"name": "zero", "time_gated": True,
                           "ns_per_iter": 40.0}, 100.0)}
    try:
        failures, _, _ = compare(current, baseline, 1.25)
    except ZeroDivisionError:
        failures = None
    expect("zero baseline ns does not raise", failures is not None)
    expect("zero baseline ns fails the gate",
           failures is not None and len(failures) == 1, repr(failures))
    expect("zero-ns failure names the record",
           failures is not None and failures and "b/zero" in failures[0],
           repr(failures))

    # Zero calib_ns in the baseline entry: same clean failure.
    baseline = {"b/calib": entry("b/calib", time_gated=True,
                                 ns_per_iter=50.0, calib_ns=0.0)}
    current = {"b/calib": ({"name": "calib", "time_gated": True,
                            "ns_per_iter": 40.0}, 100.0)}
    try:
        failures, _, _ = compare(current, baseline, 1.25)
    except ZeroDivisionError:
        failures = None
    expect("zero baseline calib does not raise", failures is not None)
    expect("zero-calib failure names the record",
           failures is not None and len(failures) == 1
           and "b/calib" in failures[0], repr(failures))

    # extra.compiles is gated exactly: any increase fails by name...
    baseline = {"b/storm": entry("b/storm", extra={"compiles": 1})}
    current = {"b/storm": ({"name": "storm",
                            "extra": {"compiles": 34}}, 100.0)}
    failures, notes, _ = compare(current, baseline, 1.25)
    expect("compile-count increase fails",
           len(failures) == 1 and failures[0].startswith("COMPILES")
           and "b/storm" in failures[0], repr(failures))
    # ...and a decrease passes with a re-baseline note.
    current = {"b/storm": ({"name": "storm",
                            "extra": {"compiles": 0}}, 100.0)}
    failures, notes, _ = compare(current, baseline, 1.25)
    expect("compile-count decrease is a note, not a failure",
           not failures and any("compiles" in n for n in notes),
           repr((failures, notes)))

    # Slow normalized time still fails (guard must not swallow real gating).
    baseline = {"b/slow": entry("b/slow", time_gated=True, ns_per_iter=50.0)}
    current = {"b/slow": ({"name": "slow", "time_gated": True,
                           "ns_per_iter": 100.0}, 100.0)}
    failures, _, _ = compare(current, baseline, 1.25)
    expect("2x normalized slowdown fails",
           len(failures) == 1 and failures[0].startswith("TIME"),
           repr(failures))

    # Shard-scaling style: the same compile count at every shard count
    # passes; one shard record creeping up fails by name while its siblings
    # stay quiet.
    baseline = {
        f"s/scale_s{n}": entry(f"s/scale_s{n}", extra={"compiles": 38})
        for n in (1, 2, 4)
    }
    current = {
        f"s/scale_s{n}": ({"name": f"scale_s{n}",
                           "extra": {"compiles": 38}}, 100.0)
        for n in (1, 2, 4)
    }
    failures, _, checked = compare(current, baseline, 1.25)
    expect("flat per-shard compile counts pass",
           not failures and checked["exact"] == 3, repr(failures))
    current["s/scale_s4"] = ({"name": "scale_s4",
                              "extra": {"compiles": 39}}, 100.0)
    failures, _, _ = compare(current, baseline, 1.25)
    expect("one shard's extra compile fails by name",
           len(failures) == 1 and failures[0].startswith("COMPILES")
           and "s/scale_s4" in failures[0], repr(failures))

    # --filter: keeps matching keys, drops the rest.
    entries = {"shard_scaling/shard/scale_s1": 1, "serve_throughput/sweep": 2}
    kept = apply_filter(entries, "shard_scaling/")
    expect("filter keeps only matching keys",
           set(kept) == {"shard_scaling/shard/scale_s1"}, repr(kept))
    expect("empty filter is a no-op",
           apply_filter(entries, "") is entries)
    # Filtering both sides: a baseline-only record outside the filter is not
    # reported missing, while a regression inside the filter still fails.
    baseline = {
        "b/in": entry("b/in", extra={"compiles": 1}),
        "b/out": entry("b/out", extra={"compiles": 5}),
    }
    current = {"b/in": ({"name": "in", "extra": {"compiles": 2}}, 100.0)}
    failures, notes, _ = compare(apply_filter(current, "b/in"),
                                 apply_filter(baseline, "b/in"), 1.25)
    expect("filtered compare still catches the in-filter regression",
           len(failures) == 1 and "b/in" in failures[0], repr(failures))
    expect("filtered-out baseline entry is not reported missing",
           not any("b/out" in n for n in notes), repr(notes))

    bad = [(name, detail) for name, ok, detail in checks if not ok]
    for name, ok, _ in checks:
        print(f"  {'ok' if ok else 'FAIL'}  {name}")
    if bad:
        print(f"\nself-test: {len(bad)} of {len(checks)} checks failed:",
              file=sys.stderr)
        for name, detail in bad:
            print(f"  {name}: {detail}", file=sys.stderr)
        sys.exit(1)
    print(f"self-test: all {len(checks)} checks passed")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", nargs="*", help="tssa-bench-v1 JSON files")
    parser.add_argument("--baseline",
                        help="bench/baseline.json")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="max allowed normalized ns_per_iter ratio "
                             "(default 1.25)")
    parser.add_argument("--filter", default=None, metavar="SUBSTRING",
                        help="gate only records whose <binary>/<name> key "
                             "contains SUBSTRING (both sides: non-matching "
                             "baseline entries are not reported missing)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the result files "
                             "instead of checking")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate logic's unit checks and exit")
    args = parser.parse_args()

    if args.self_test:
        self_test()
        return
    if not args.baseline:
        parser.error("--baseline is required unless --self-test")
    if not args.results:
        parser.error("at least one result file is required")

    if args.filter and args.update:
        parser.error("--filter cannot be combined with --update: rewriting "
                     "the baseline from a filtered subset would drop every "
                     "other entry")

    current = load_results(args.results)
    if args.update:
        write_baseline(current, args.baseline)
        return
    current = apply_filter(current, args.filter)
    if args.filter and not current:
        sys.exit(f"--filter={args.filter!r} matched no records in the given "
                 "result files; a typo must not become a silent pass")

    with open(args.baseline) as f:
        baseline_doc = json.load(f)
    if baseline_doc.get("schema") != BASELINE_SCHEMA:
        sys.exit(f"{args.baseline}: expected schema {BASELINE_SCHEMA!r}, "
                 f"got {baseline_doc.get('schema')!r}")
    baseline = apply_filter(baseline_doc["entries"], args.filter)

    failures, notes, checked = compare(current, baseline, args.threshold)

    for note in notes:
        print(note)
    print(f"checked {checked['exact']} exact counters, {checked['times']} "
          f"gated times, {checked['shedding']} shed/fallback counters, and "
          f"{checked['tuning']} tuner-honesty gates "
          f"against {len(baseline)} baseline entries")

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("\nIf this change is intentional, re-baseline:\n"
              "  python3 scripts/check_bench.py --baseline "
              "bench/baseline.json --update <result files>",
              file=sys.stderr)
        sys.exit(1)
    print("bench gate: OK")


if __name__ == "__main__":
    main()
