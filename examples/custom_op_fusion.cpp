// Example: writing your own imperative operator and compiling it.
//
// A user-defined "fused residual gate" written the way a researcher would
// write it in PyTorch — with views and in-place updates into a preallocated
// buffer inside a data-dependent loop:
//
//   out = zeros(B, n_experts, D)
//   for e in range(n_experts):                  # n_experts is a runtime value!
//       g = sigmoid(x @ We + b_e)               # per-expert gate
//       out[:, e] = g * x + (1 - g) * skip      # in-place slice write
//
// The loop bound comes from a runtime scalar (tracing systems graph-break
// here), but every iteration touches only slice e, so TensorSSA both
// functionalizes the writes AND batches the loop into a single ParallelMap.
//
// Run: ./build/examples/example_custom_op_fusion
#include <cstdio>

#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/runtime/pipeline.h"
#include "src/tensor/random.h"

using namespace tssa;
using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::Type;
using ir::Value;
using runtime::RtValue;

int main() {
  constexpr std::int64_t kBatch = 4;
  constexpr std::int64_t kDim = 32;
  constexpr std::int64_t kExperts = 8;

  // ---- Build the imperative program -----------------------------------------
  Graph g;
  Value* x = g.addInput(Type::tensor(DType::Float32), "x");
  Value* skip = g.addInput(Type::tensor(DType::Float32), "skip");
  Value* experts = g.addInput(Type::integer(), "n_experts");
  IRBuilder b(g);
  Rng rng(99);
  Value* we = b.constTensor(rng.normal({kDim, kExperts}, 0.0, 0.4));
  Value* out = b.zeros({kBatch, kExperts, kDim});

  Value* gates = b.sigmoid(b.matmul(x, we));  // [B, E], computed once
  Node* loop = b.makeLoop(experts, {});
  Block* body = loop->block(0);
  {
    IRBuilder ib(g);
    ib.setInsertionPointToEnd(body);
    Value* e = body->param(0);
    Value* ge = ib.unsqueeze(ib.select(gates, 1, e), 1);  // [B, 1]
    Value* one = ib.constTensor(Tensor::ones({}));
    Value* mixed = ib.add(ib.mul(ge, x), ib.mul(ib.sub(one, ge), skip));
    ib.copy_(ib.select(out, 1, e), mixed);  // in-place slice write
  }
  g.addOutput(out);
  ir::verify(g);

  std::printf("imperative source program:\n%s\n", toString(g).c_str());

  // ---- Compile + run under every pipeline ------------------------------------
  std::vector<RtValue> inputs{RtValue(rng.uniform({kBatch, kDim}, -1, 1)),
                              RtValue(rng.uniform({kBatch, kDim}, -1, 1)),
                              RtValue(Scalar(kExperts))};
  std::vector<RtValue> reference;
  for (runtime::PipelineKind kind : runtime::allPipelines()) {
    runtime::Pipeline p(kind, g);
    auto result = p.run(inputs);
    if (reference.empty()) reference = result;
    const bool same =
        allClose(reference[0].tensor(), result[0].tensor(), 1e-5);
    std::printf("%-16s kernels=%3lld  modelled=%7.1fus  numerics=%s\n",
                std::string(pipelineName(kind)).c_str(),
                static_cast<long long>(p.profiler().kernelLaunches()),
                p.profiler().simTimeUs(), same ? "ok" : "DIFFER");
    if (kind == runtime::PipelineKind::TensorSsa) {
      std::printf("\nTensorSSA compiled form (note tssa::ParallelMap):\n%s\n",
                  toString(p.compiled()).c_str());
    }
  }
  return 0;
}
