// Example: compiling a real detection post-processing program.
//
// Builds the YOLOv3 decode workload (slice mutations into a preallocated
// buffer across three scales + candidate selection) and compares the five
// compilation pipelines on it: numerics, kernel launches, and modelled
// latency on both paper platforms.
//
// Run: ./build/examples/example_yolo_postprocess
#include <cstdio>

#include "src/runtime/pipeline.h"
#include "src/workloads/workload.h"

using namespace tssa;

int main() {
  workloads::WorkloadConfig config;
  config.batch = 1;
  workloads::Workload w = workloads::buildWorkload("yolov3", config);
  std::printf("workload: %s — %s\n\n", w.name.c_str(), w.description.c_str());

  std::vector<runtime::RtValue> reference;
  for (const auto& device : {runtime::DeviceSpec::consumer(),
                             runtime::DeviceSpec::dataCenter()}) {
    std::printf("--- %s ---\n", device.name.c_str());
    double eagerUs = 0;
    for (runtime::PipelineKind kind : runtime::allPipelines()) {
      runtime::Pipeline p(kind, *w.graph, device);
      auto out = p.run(w.inputs);
      if (reference.empty()) reference = out;
      // Verify numerics against the first pipeline.
      bool same = true;
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i].isTensor() &&
            !allClose(reference[i].tensor(), out[i].tensor(), 1e-4)) {
          same = false;
        }
      }
      if (kind == runtime::PipelineKind::Eager)
        eagerUs = p.profiler().simTimeUs();
      std::printf("%-16s kernels=%4lld  modelled=%8.1fus  speedup=%5.2fx  "
                  "numerics=%s\n",
                  std::string(pipelineName(kind)).c_str(),
                  static_cast<long long>(p.profiler().kernelLaunches()),
                  p.profiler().simTimeUs(),
                  eagerUs / p.profiler().simTimeUs(), same ? "ok" : "DIFFER");
    }
    std::printf("\n");
  }
  std::printf("The first output tensor (selected boxes):\n  %s\n",
              reference[0].tensor().toString(12).c_str());
  return 0;
}
