// Example: an LSTM sequence loop through the TensorSSA pipeline.
//
// Shows the paper's NLP case: per-step gate slices and in-place column
// writes inside a prim::Loop. TensorSSA functionalizes the buffer writes so
// each step collapses to matmul + one fused kernel, while the loop itself
// stays sequential (the h/c carry is a true dependence).
//
// Run: ./build/examples/example_lstm_inference [seq_len]
#include <cstdio>
#include <cstdlib>

#include "src/ir/printer.h"
#include "src/runtime/pipeline.h"
#include "src/workloads/workload.h"

using namespace tssa;

int main(int argc, char** argv) {
  workloads::WorkloadConfig config;
  config.batch = 1;
  config.seqLen = argc > 1 ? std::atoll(argv[1]) : 32;

  workloads::Workload w = workloads::buildWorkload("lstm", config);
  std::printf("workload: %s (seq_len=%lld)\n\n", w.description.c_str(),
              static_cast<long long>(config.seqLen));

  runtime::Pipeline tssa(runtime::PipelineKind::TensorSsa, *w.graph);
  auto out = tssa.run(w.inputs);
  std::printf("compiled TensorSSA graph:\n%s\n",
              toString(tssa.compiled()).c_str());

  std::printf("per-pipeline totals:\n");
  for (runtime::PipelineKind kind : runtime::allPipelines()) {
    runtime::Pipeline p(kind, *w.graph);
    p.run(w.inputs);
    std::printf("  %-16s kernels=%5lld  modelled=%9.1fus\n",
                std::string(pipelineName(kind)).c_str(),
                static_cast<long long>(p.profiler().kernelLaunches()),
                p.profiler().simTimeUs());
  }

  std::printf("\nfinal hidden state: %s\n", out[1].tensor().toString(8).c_str());
  return 0;
}
