// Quickstart: the paper's running examples, end to end.
//
//   1. Build the Figure-1 program (a view mutated in place).
//   2. Build the Figure-4 program (mutation inside a loop) and walk it
//      through every stage of the TensorSSA pipeline, printing the IR after
//      each pass — the printed forms correspond to Figure 4 (b)-(e).
//   3. Execute the original and the compiled program and show that results
//      are identical while kernel launches collapse.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/example_quickstart
#include <cstdio>

#include "src/core/dce.h"
#include "src/core/fusion.h"
#include "src/core/inplace_reuse.h"
#include "src/core/lower_inplace.h"
#include "src/core/parallelize.h"
#include "src/core/tensor_ssa.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/runtime/pipeline.h"

using namespace tssa;
using ir::Block;
using ir::Graph;
using ir::IRBuilder;
using ir::Node;
using ir::Type;
using ir::Value;
using runtime::RtValue;

namespace {

void figure1() {
  std::printf("=== Figure 1: a tensor view mutated in place ===\n\n");
  // A = zeros(2,2); B = A[0]; B.copy_(C)  -->  A is implicitly mutated.
  Tensor a = Tensor::zeros({2, 2});
  Tensor bView = a.select(0, 0);
  Tensor c = Tensor::fromData({7, 8}, {2});
  bView.copy_(c);
  std::printf("after B.copy_(C), A = %s\n", a.toString().c_str());
  std::printf("(B shares A's storage: %s)\n\n",
              bView.sharesStorageWith(a) ? "yes" : "no");
}

std::unique_ptr<Graph> buildFigure4() {
  // b = b.clone(); for i in range(n): b[i] = b[i] + 1
  auto g = std::make_unique<Graph>();
  Value* b0 = g->addInput(Type::tensor(DType::Float32), "b");
  Value* n = g->addInput(Type::integer(), "n");
  IRBuilder bld(*g);
  Value* b1 = bld.clone(b0);
  Node* loop = bld.makeLoop(n, {});
  Block* body = loop->block(0);
  IRBuilder inner(*g);
  inner.setInsertionPointToEnd(body);
  Value* i = body->param(0);
  Value* bi = inner.select(b1, 0, i);
  Value* sum = inner.add(bi, inner.constTensor(Tensor::ones({})));
  inner.copy_(inner.select(b1, 0, i), sum);
  g->addOutput(b1);
  ir::verify(*g);
  return g;
}

void figure4() {
  std::printf("=== Figure 4: functionalizing a loop mutation ===\n\n");
  auto g = buildFigure4();
  std::printf("--- (b) graph-level IR of the imperative program ---\n%s\n",
              toString(*g).c_str());

  core::lowerInplaceOps(*g);
  auto stats = core::convertToTensorSSA(*g);
  std::printf("--- (e) after TensorSSA conversion (%s) ---\n%s\n",
              stats.toString().c_str(), toString(*g).c_str());

  const std::size_t parallel = core::parallelizeLoops(*g);
  core::hoistConstants(*g);
  const std::size_t groups =
      core::fuseKernels(*g, core::FusionPolicy::tensorssa());
  core::markInplaceAssigns(*g);
  core::eliminateDeadCode(*g);
  ir::verify(*g);
  std::printf(
      "--- after horizontal parallelization (%zu loop(s)) and vertical "
      "fusion (%zu group(s)) ---\n%s\n",
      parallel, groups, toString(*g).c_str());
}

void comparePipelines() {
  std::printf("=== Executing Figure 4 under every pipeline ===\n\n");
  auto g = buildFigure4();
  std::vector<RtValue> inputs{RtValue(Tensor::fromData({10, 20, 30, 40}, {4})),
                              RtValue(Scalar(std::int64_t{4}))};
  for (runtime::PipelineKind kind : runtime::allPipelines()) {
    runtime::Pipeline p(kind, *g);
    auto out = p.run(inputs);
    std::printf("%-16s result=%s  kernels=%lld  modelled=%.1fus\n",
                std::string(pipelineName(kind)).c_str(),
                out[0].tensor().toString(8).c_str(),
                static_cast<long long>(p.profiler().kernelLaunches()),
                p.profiler().simTimeUs());
  }
  std::printf("\nAll pipelines compute [11, 21, 31, 41]; TensorSSA does it "
              "in the fewest kernel launches.\n");
}

}  // namespace

int main() {
  figure1();
  figure4();
  comparePipelines();
  return 0;
}
